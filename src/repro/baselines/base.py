"""Shared building blocks for the baseline zoo.

Every Table III baseline is re-implemented on the ``repro.nn`` substrate
with its distinguishing inductive bias intact (DESIGN.md §2).  This
module holds the pieces several of them share: graph convolutions over
the region graph, gated temporal convolutions, and the statistical-model
base class for ARIMA/SVR-style methods that are fit at prediction time.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..training.interface import ForecastModel

__all__ = ["StatisticalBaseline", "GraphConv", "GatedTemporalConv", "flatten_window"]


class StatisticalBaseline(ForecastModel):
    """Base for per-series statistical methods (no gradient training).

    Subclasses implement :meth:`predict_series` for a single univariate
    history; :meth:`predict` maps it over every (region, category) pair.
    ``requires_training`` tells the benchmark harness to skip the
    gradient loop.  These models own no parameters at all — the optimiser
    and trainer tolerate an empty parameter list, so no dummy-parameter
    workaround is needed.
    """

    requires_training = False

    def predict_series(self, series: np.ndarray) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, window: np.ndarray) -> np.ndarray:
        summary = getattr(window, "__repro_map_series__", None)
        if summary is not None:
            # Abstract shape checking: the per-series solve is irreducibly
            # concrete (data-dependent branches, in-place design matrices),
            # so the interpreter consumes this (R, T, C) -> (R, C) float64
            # function summary instead.
            return summary()
        regions, _, categories = window.shape
        out = np.empty((regions, categories))
        for r in range(regions):
            for c in range(categories):
                out[r, c] = self.predict_series(window[r, :, c])
        return out

    def forward(self, window: np.ndarray) -> Tensor:
        return Tensor(self.predict(window))

    def training_loss(self, window: np.ndarray, target: np.ndarray) -> Tensor:
        """Statistical baselines have nothing to optimise."""
        return Tensor(np.zeros(()), requires_grad=False)


class GraphConv(nn.Module):
    """One-hop graph convolution ``σ(Â X W)`` over a fixed operator ``Â``.

    ``support`` is any ``(R, R)`` propagation matrix — symmetric GCN
    normalisation, random-walk, or a learned adjacency passed at call
    time.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, support: np.ndarray | None = None):
        super().__init__()
        self.support = None if support is None else Tensor(np.asarray(support))
        self.linear = nn.Linear(in_dim, out_dim, rng)

    def forward(self, x: Tensor, support: Tensor | None = None) -> Tensor:
        """``x``: (R, d) or (B, R, d); ``support`` overrides the fixed one."""
        operator = support if support is not None else self.support
        if operator is None:
            raise ValueError("GraphConv needs a support matrix")
        return operator @ self.linear(x)


class GatedTemporalConv(nn.Module):
    """GLU-gated 1-D temporal convolution (STGCN / Graph WaveNet style).

    ``out = (W_f ∗ x) ⊙ σ(W_g ∗ x)`` with 'same' padding so the time
    length is preserved.
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        dilation: int = 1,
    ):
        super().__init__()
        padding = (kernel_size - 1) * dilation // 2
        self.filter_conv = nn.Conv1d(channels, channels, kernel_size, rng, padding=padding, dilation=dilation)
        self.gate_conv = nn.Conv1d(channels, channels, kernel_size, rng, padding=padding, dilation=dilation)

    def forward(self, x: Tensor) -> Tensor:
        """``x``: (N, channels, T) -> same shape."""
        return self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()


def flatten_window(window: np.ndarray) -> np.ndarray:
    """``(R, W, C)`` history → per-region feature matrix ``(R, W*C)``."""
    regions = window.shape[0]
    return window.reshape(regions, -1)
