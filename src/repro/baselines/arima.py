"""ARIMA baseline (paper: Pan et al., ICDM 2012).

A from-scratch ARIMA(p, d, q) fit by the Hannan–Rissanen two-stage
procedure: a long autoregression estimates innovations, then the ARMA
coefficients are obtained by least squares on lagged values and lagged
innovations.  One model is fit per (region, category) history window at
prediction time, which is how classical baselines are evaluated in the
crime-prediction literature.
"""

from __future__ import annotations

import numpy as np

from .base import StatisticalBaseline

__all__ = ["ARIMA", "fit_ar_coefficients", "hannan_rissanen"]


def fit_ar_coefficients(series: np.ndarray, order: int) -> np.ndarray:
    """Least-squares AR(p) coefficients (constant term last)."""
    n = len(series)
    if n <= order + 1:
        return np.zeros(order + 1)
    rows = n - order
    design = np.empty((rows, order + 1))
    for lag in range(order):
        design[:, lag] = series[order - 1 - lag : n - 1 - lag]
    design[:, order] = 1.0
    target = series[order:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    return coef


def hannan_rissanen(series: np.ndarray, p: int, q: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Estimate ARMA(p, q) coefficients via Hannan–Rissanen.

    Returns ``(ar_coefs, ma_coefs, constant)``.
    """
    long_order = min(max(p + q + 2, 4), max(len(series) // 3, 1))
    long_ar = fit_ar_coefficients(series, long_order)
    # Innovations from the long AR fit.
    residuals = np.zeros_like(series)
    for t in range(long_order, len(series)):
        lags = series[t - long_order : t][::-1]
        residuals[t] = series[t] - (lags @ long_ar[:-1] + long_ar[-1])

    start = max(p, q, long_order)
    rows = len(series) - start
    if rows <= p + q + 1:
        ar = fit_ar_coefficients(series, p)
        return ar[:-1], np.zeros(q), ar[-1]
    design = np.empty((rows, p + q + 1))
    for lag in range(p):
        design[:, lag] = series[start - 1 - lag : len(series) - 1 - lag]
    for lag in range(q):
        design[:, p + lag] = residuals[start - 1 - lag : len(series) - 1 - lag]
    design[:, -1] = 1.0
    coef, *_ = np.linalg.lstsq(design, series[start:], rcond=None)
    return coef[:p], coef[p : p + q], coef[-1]


class ARIMA(StatisticalBaseline):
    """Per-series ARIMA(p, d, q) one-step-ahead forecaster."""

    def __init__(self, p: int = 3, d: int = 1, q: int = 1):
        super().__init__()
        if p < 1 or d < 0 or q < 0:
            raise ValueError("require p >= 1, d >= 0, q >= 0")
        self.p = p
        self.d = d
        self.q = q

    def predict_series(self, series: np.ndarray) -> float:
        series = np.asarray(series, dtype=float)
        history = series.copy()
        tails: list[float] = []
        for _ in range(self.d):
            tails.append(history[-1])
            history = np.diff(history)
        if len(history) <= self.p + 2 or np.allclose(history, history[0]):
            forecast = float(history.mean()) if len(history) else 0.0
        else:
            ar, ma, constant = hannan_rissanen(history, self.p, self.q)
            residuals = self._innovations(history, ar, ma, constant)
            lags = history[-self.p :][::-1]
            res_lags = residuals[-self.q :][::-1] if self.q else np.zeros(0)
            forecast = float(lags @ ar + res_lags @ ma + constant)
        # Guard against unstable fits (near-singular regressions on sparse
        # series can yield explosive coefficients): never forecast outside
        # the window's observed range extended by one range-width.
        low, high = float(history.min()), float(history.max())
        span = max(high - low, 1.0)
        forecast = float(np.clip(forecast, low - span, high + span))
        # Undo differencing.
        for tail in reversed(tails):
            forecast += tail
        return forecast

    def _innovations(
        self, series: np.ndarray, ar: np.ndarray, ma: np.ndarray, constant: float
    ) -> np.ndarray:
        residuals = np.zeros_like(series)
        for t in range(self.p, len(series)):
            lags = series[t - self.p : t][::-1]
            value = lags @ ar + constant
            for lag in range(self.q):
                if t - 1 - lag >= 0:
                    value += ma[lag] * residuals[t - 1 - lag]
            residuals[t] = series[t] - value
        return residuals
