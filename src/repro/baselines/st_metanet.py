"""ST-MetaNet baseline (Pan et al. — KDD 2019).

Meta-learning spatial-temporal network: per-region *meta knowledge*
embeddings feed a hypernetwork that generates region-specific weights
for the temporal encoder's output transform, so each region gets its own
forecasting function while sharing the recurrent backbone.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..training.interface import ForecastModel

__all__ = ["STMetaNet"]


class STMetaNet(ForecastModel):
    """GRU backbone + meta-learned region-specific output weights."""

    def __init__(
        self,
        num_regions: int,
        num_categories: int,
        hidden: int = 16,
        meta_dim: int = 8,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.hidden = hidden
        self.num_categories = num_categories
        self.meta_knowledge = nn.Parameter(nn.init.normal((num_regions, meta_dim), rng, std=0.1))
        self.gru = nn.GRU(num_categories, hidden, rng)
        # Hypernetwork: meta knowledge -> flattened (hidden x C) weight + C bias.
        out_size = hidden * num_categories + num_categories
        self.meta_mlp = nn.Sequential(
            nn.Linear(meta_dim, 2 * meta_dim, rng),
            nn.ReLU(),
            nn.Linear(2 * meta_dim, out_size, rng),
        )

    def forward(self, window: np.ndarray) -> Tensor:
        r, w, c = window.shape
        _, h_last = self.gru(Tensor(window))  # (R, hidden)
        generated = self.meta_mlp(self.meta_knowledge)  # (R, hidden*C + C)
        weight = generated[:, : self.hidden * c].reshape(r, self.hidden, c)
        bias = generated[:, self.hidden * c :]
        # Region-specific affine map: (R, 1, hidden) @ (R, hidden, C) -> (R, C)
        pred = (h_last.expand_dims(1) @ weight).squeeze(1) + bias
        return pred
