"""``repro.baselines`` — the fifteen comparison models of Table III.

Model construction now lives in the :data:`repro.api.REGISTRY` model
registry; ``build_baseline`` remains as a thin deprecation shim that
delegates to it.  Names match the paper's Table III rows
(``BASELINE_NAMES`` keeps the row order).
"""

from __future__ import annotations

import warnings

from ..data.datasets import CrimeDataset
from .agcrn import AGCRN
from .arima import ARIMA
from .base import GatedTemporalConv, GraphConv, StatisticalBaseline
from .dcrnn import DCRNN
from .deepcrime import DeepCrime
from .dmstgcn import DMSTGCN
from .gman import GMAN
from .gwn import GraphWaveNet
from .historical_average import HistoricalAverage
from .mtgnn import MTGNN
from .st_metanet import STMetaNet
from .st_resnet import STResNet
from .stdn import STDN
from .stgcn import STGCN
from .stshn import STSHN
from .sttrans import STtrans
from .svr import SVR

__all__ = [
    "ARIMA",
    "SVR",
    "HistoricalAverage",
    "STResNet",
    "DCRNN",
    "STGCN",
    "GraphWaveNet",
    "STtrans",
    "DeepCrime",
    "STDN",
    "STMetaNet",
    "GMAN",
    "AGCRN",
    "MTGNN",
    "STSHN",
    "DMSTGCN",
    "StatisticalBaseline",
    "GraphConv",
    "GatedTemporalConv",
    "BASELINE_NAMES",
    "build_baseline",
]

# Table III row order.
BASELINE_NAMES: tuple[str, ...] = (
    "ARIMA",
    "SVM",
    "ST-ResNet",
    "DCRNN",
    "STGCN",
    "GWN",
    "STtrans",
    "DeepCrime",
    "STDN",
    "ST-MetaNet",
    "GMAN",
    "AGCRN",
    "MTGNN",
    "STSHN",
    "DMSTGCN",
)


def build_baseline(
    name: str,
    dataset: CrimeDataset,
    window: int,
    hidden: int = 16,
    seed: int = 0,
):
    """Instantiate a Table III baseline for ``dataset``'s geometry.

    .. deprecated::
        Delegates to ``repro.api.REGISTRY.build``; resolve names through
        the registry directly (it also knows capabilities and ST-HSL).
    """
    warnings.warn(
        "build_baseline is deprecated; use repro.api.REGISTRY.build instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import REGISTRY  # imported lazily to avoid a package cycle

    return REGISTRY.build(name, dataset=dataset, window=window, hidden=hidden, seed=seed)
