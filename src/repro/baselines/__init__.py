"""``repro.baselines`` — the fifteen comparison models of Table III.

``build_baseline`` constructs any of them from a dataset's geometry with
matched capacity, so the benchmark harness can iterate the whole zoo
under one budget.  Names match the paper's Table III rows.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import CrimeDataset
from .agcrn import AGCRN
from .arima import ARIMA
from .base import GatedTemporalConv, GraphConv, StatisticalBaseline
from .dcrnn import DCRNN
from .deepcrime import DeepCrime
from .dmstgcn import DMSTGCN
from .gman import GMAN
from .gwn import GraphWaveNet
from .historical_average import HistoricalAverage
from .mtgnn import MTGNN
from .st_metanet import STMetaNet
from .st_resnet import STResNet
from .stdn import STDN
from .stgcn import STGCN
from .stshn import STSHN
from .sttrans import STtrans
from .svr import SVR

__all__ = [
    "ARIMA",
    "SVR",
    "HistoricalAverage",
    "STResNet",
    "DCRNN",
    "STGCN",
    "GraphWaveNet",
    "STtrans",
    "DeepCrime",
    "STDN",
    "STMetaNet",
    "GMAN",
    "AGCRN",
    "MTGNN",
    "STSHN",
    "DMSTGCN",
    "StatisticalBaseline",
    "GraphConv",
    "GatedTemporalConv",
    "BASELINE_NAMES",
    "build_baseline",
]

# Table III row order.
BASELINE_NAMES: tuple[str, ...] = (
    "ARIMA",
    "SVM",
    "ST-ResNet",
    "DCRNN",
    "STGCN",
    "GWN",
    "STtrans",
    "DeepCrime",
    "STDN",
    "ST-MetaNet",
    "GMAN",
    "AGCRN",
    "MTGNN",
    "STSHN",
    "DMSTGCN",
)


def build_baseline(
    name: str,
    dataset: CrimeDataset,
    window: int,
    hidden: int = 16,
    seed: int = 0,
):
    """Instantiate a Table III baseline for ``dataset``'s geometry."""
    grid = dataset.grid
    regions = dataset.num_regions
    categories = dataset.num_categories
    adjacency = grid.adjacency_matrix()
    normalized = grid.normalized_adjacency()

    if name == "ARIMA":
        return ARIMA()
    if name == "SVM":
        return SVR(window=window, num_categories=categories, seed=seed)
    if name == "HA":
        return HistoricalAverage()
    if name == "ST-ResNet":
        return STResNet(grid.rows, grid.cols, categories, window, hidden=hidden, seed=seed)
    if name == "DCRNN":
        return DCRNN(adjacency, categories, hidden=hidden, seed=seed)
    if name == "STGCN":
        return STGCN(normalized, categories, window, hidden=hidden, seed=seed)
    if name == "GWN":
        return GraphWaveNet(adjacency, categories, hidden=hidden, seed=seed)
    if name == "STtrans":
        return STtrans(regions, categories, window, dim=hidden, seed=seed)
    if name == "DeepCrime":
        return DeepCrime(regions, categories, hidden=hidden, seed=seed)
    if name == "STDN":
        return STDN(grid.rows, grid.cols, categories, window, hidden=hidden, seed=seed)
    if name == "ST-MetaNet":
        return STMetaNet(regions, categories, hidden=hidden, seed=seed)
    if name == "GMAN":
        return GMAN(regions, categories, window, dim=hidden, seed=seed)
    if name == "AGCRN":
        return AGCRN(regions, categories, hidden=hidden, seed=seed)
    if name == "MTGNN":
        return MTGNN(regions, categories, hidden=hidden, seed=seed)
    if name == "STSHN":
        return STSHN(normalized, categories, hidden=hidden, num_hyperedges=128, seed=seed)
    if name == "DMSTGCN":
        return DMSTGCN(regions, categories, hidden=hidden, seed=seed)
    raise KeyError(f"unknown baseline {name!r}; expected one of {BASELINE_NAMES + ('HA',)}")
