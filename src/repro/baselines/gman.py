"""GMAN baseline (Zheng, Fan, Wang & Qi — AAAI 2020).

Graph Multi-Attention Network: stacked ST-attention blocks where each
block runs *spatial attention* (regions attend to regions) and *temporal
attention* (days attend to days) in parallel and merges them with a
*gated fusion* layer — GMAN's characteristic design.  A spatio-temporal
embedding built from learnable node vectors and day positions conditions
all attention layers.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..training.interface import ForecastModel

__all__ = ["GMAN"]


class _STAttBlock(nn.Module):
    def __init__(self, dim: int, heads: int, rng):
        super().__init__()
        self.spatial = nn.MultiHeadAttention(dim, heads, rng)
        self.temporal = nn.MultiHeadAttention(dim, heads, rng)
        self.gate = nn.Linear(2 * dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        """``x``: (R, W, dim)."""
        h_t = self.temporal(x)
        h_s = self.spatial(x.transpose(1, 0, 2)).transpose(1, 0, 2)
        z = self.gate(nn.concatenate([h_s, h_t], axis=-1)).sigmoid()
        return x + z * h_s + (1.0 - z) * h_t


class GMAN(ForecastModel):
    """ST-embedding conditioned multi-attention forecaster."""

    def __init__(
        self,
        num_regions: int,
        num_categories: int,
        window: int,
        dim: int = 16,
        heads: int = 2,
        num_blocks: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_proj = nn.Linear(num_categories, dim, rng)
        self.node_embed = nn.Parameter(nn.init.normal((num_regions, dim), rng, std=0.1))
        self.time_embed = nn.Parameter(nn.init.normal((window, dim), rng, std=0.1))
        self.blocks = nn.ModuleList([_STAttBlock(dim, heads, rng) for _ in range(num_blocks)])
        self.head = nn.Linear(dim, num_categories, rng)

    def forward(self, window: np.ndarray) -> Tensor:
        h = self.input_proj(Tensor(window))  # (R, W, dim)
        st_embedding = self.node_embed.expand_dims(1) + self.time_embed.expand_dims(0)
        h = h + st_embedding
        for block in self.blocks:
            h = block(h)
        return self.head(h.mean(axis=1))
