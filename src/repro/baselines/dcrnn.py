"""DCRNN baseline (Li, Yu, Shahabi & Liu — ICLR 2018).

Diffusion Convolutional Recurrent Neural Network: GRU gates whose linear
maps are replaced by K-hop diffusion convolutions over the region graph
(random-walk operator and its transpose, capturing both diffusion
directions).  We run the encoder over the history window and project the
final hidden state to the next-day prediction.

Batched-native: the diffusion convolution and the DCGRU cell operate on
trailing dimensions of ``(..., R, d)`` states, so a stacked
``(B, R, W, C)`` batch runs the recurrence once over ``(B, R, ·)``
hidden states (the supports broadcast over the batch axis) and the
per-sample ``forward`` is a ``B=1`` wrapper.  The duck type
(``training_loss_batch``/``predict_batch``) puts DCRNN on the trainer's
vectorized path.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..training.interface import ForecastModel

__all__ = ["DCRNN", "random_walk_supports"]


def random_walk_supports(adjacency: np.ndarray) -> list[np.ndarray]:
    """Forward and backward random-walk operators ``D⁻¹A`` and ``D⁻¹Aᵀ``."""
    supports = []
    for a in (adjacency, adjacency.T):
        degree = a.sum(axis=1, keepdims=True)
        supports.append(a / np.maximum(degree, 1e-12))
    return supports


class _DiffusionConv(nn.Module):
    """K-hop bidirectional diffusion convolution."""

    def __init__(self, in_dim: int, out_dim: int, supports: list[np.ndarray], k_hops: int, rng):
        super().__init__()
        self.supports = [Tensor(s) for s in supports]
        self.k_hops = k_hops
        num_matrices = len(supports) * k_hops + 1  # + identity
        self.linear = nn.Linear(in_dim * num_matrices, out_dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        """``x``: (..., R, d_in) -> (..., R, d_out); supports broadcast over
        any leading (batch) axes."""
        terms = [x]
        for support in self.supports:
            hop = x
            for _ in range(self.k_hops):
                hop = support @ hop
                terms.append(hop)
        return self.linear(nn.concatenate(terms, axis=-1))


class _DCGRUCell(nn.Module):
    def __init__(self, in_dim: int, hidden: int, supports: list[np.ndarray], k_hops: int, rng):
        super().__init__()
        self.hidden = hidden
        self.gate_conv = _DiffusionConv(in_dim + hidden, 2 * hidden, supports, k_hops, rng)
        self.cand_conv = _DiffusionConv(in_dim + hidden, hidden, supports, k_hops, rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        combined = nn.concatenate([x, h], axis=-1)
        gates = self.gate_conv(combined).sigmoid()
        r, u = gates[..., : self.hidden], gates[..., self.hidden :]
        candidate = self.cand_conv(nn.concatenate([x, r * h], axis=-1)).tanh()
        return u * h + (1.0 - u) * candidate


class DCRNN(ForecastModel):
    """Encoder-style DCRNN for next-day crime prediction."""

    def __init__(
        self,
        adjacency: np.ndarray,
        num_categories: int,
        hidden: int = 16,
        k_hops: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        supports = random_walk_supports(adjacency)
        self.num_regions = adjacency.shape[0]
        self.hidden = hidden
        self.cell = _DCGRUCell(num_categories, hidden, supports, k_hops, rng)
        self.head = nn.Linear(hidden, num_categories, rng)

    def forward(self, window: np.ndarray) -> Tensor:
        """``(R, W, C)`` history -> ``(R, C)`` prediction (B=1 wrapper)."""
        window = nn.as_input(window)
        if window.ndim != 3:
            raise ValueError(f"expected a (R, W, C) window, got shape {window.shape}")
        return self.forward_batch(window[None]).squeeze(0)

    def forward_batch(self, windows: np.ndarray) -> Tensor:
        """``(B, R, W, C)`` stacked histories -> ``(B, R, C)`` predictions."""
        windows = nn.as_input(windows)
        if windows.ndim != 4:
            raise ValueError(f"expected a (B, R, W, C) batch, got shape {windows.shape}")
        b, _, steps, _ = windows.shape
        h = Tensor(np.zeros((b, self.num_regions, self.hidden)))
        for t in range(steps):
            h = self.cell(Tensor(windows[:, :, t, :]), h)
        return self.head(h)

    def training_loss_batch(self, windows: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean MSE over a stacked batch; its gradient equals the average of
        per-sample ``training_loss`` gradients, so batched and sequential
        trainer paths take identical optimizer steps."""
        return F.mse_loss(self.forward_batch(windows), targets, reduction="mean")
