"""Graph WaveNet baseline (Wu et al. — IJCAI 2019).

Combines an *adaptive adjacency matrix* learned from node embeddings
(``softmax(relu(E₁E₂ᵀ))``) with stacked dilated causal gated temporal
convolutions and graph convolutions over both the fixed and adaptive
supports, plus skip connections into the output head.

Batched-native: every layer operates on stacked ``(B, R, ch, T)`` inputs
— the temporal convolutions fold batch and region into their sample
axis, the graph mixing broadcasts the ``(R, R)`` supports over batch and
time — and the per-sample ``forward`` is a ``B=1`` wrapper.  The duck
type (``training_loss_batch``/``predict_batch``) puts Graph WaveNet on
the trainer's vectorized path.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..training.interface import ForecastModel
from .base import GatedTemporalConv
from .dcrnn import random_walk_supports

__all__ = ["GraphWaveNet"]


class _GWNLayer(nn.Module):
    def __init__(self, channels: int, kernel: int, dilation: int, num_supports: int, rng):
        super().__init__()
        self.temporal = GatedTemporalConv(channels, kernel, rng, dilation=dilation)
        self.graph_proj = nn.Linear(channels * (num_supports + 1), channels, rng)
        self.skip_proj = nn.Linear(channels, channels, rng)

    def forward(self, x: Tensor, supports: list[Tensor]) -> tuple[Tensor, Tensor]:
        """``x``: (B, R, ch, T); returns (residual output, skip contribution)."""
        b, r, ch, t = x.shape
        h = self.temporal(x.reshape(b * r, ch, t)).reshape(b, r, ch, t)
        time_major = h.transpose(0, 3, 1, 2)  # (B, T, R, ch)
        terms = [time_major]
        for support in supports:
            terms.append(support @ time_major)  # (R, R) broadcasts over (B, T)
        mixed = self.graph_proj(nn.concatenate(terms, axis=-1)).relu()  # (B, T, R, ch)
        out = mixed.transpose(0, 2, 3, 1) + x
        skip = self.skip_proj(mixed.mean(axis=1))  # (B, R, ch)
        return out, skip


class GraphWaveNet(ForecastModel):
    """Dilated temporal convolutions + adaptive graph convolutions."""

    def __init__(
        self,
        adjacency: np.ndarray,
        num_categories: int,
        hidden: int = 16,
        embed_dim: int = 8,
        num_layers: int = 3,
        kernel: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        num_regions = adjacency.shape[0]
        self.fixed_supports = [Tensor(s) for s in random_walk_supports(adjacency)]
        self.source_embed = nn.Parameter(nn.init.normal((num_regions, embed_dim), rng, std=0.1))
        self.target_embed = nn.Parameter(nn.init.normal((num_regions, embed_dim), rng, std=0.1))
        self.input_proj = nn.Linear(num_categories, hidden, rng)
        self.layers = nn.ModuleList(
            [
                _GWNLayer(hidden, kernel, 2 ** i, len(self.fixed_supports) + 1, rng)
                for i in range(num_layers)
            ]
        )
        self.head = nn.Sequential(nn.Linear(hidden, hidden, rng), nn.ReLU(), nn.Linear(hidden, num_categories, rng))

    def adaptive_adjacency(self) -> Tensor:
        """``softmax(relu(E₁ E₂ᵀ))`` — the self-learned dependency graph."""
        scores = (self.source_embed @ self.target_embed.T).relu()
        return F.softmax(scores, axis=-1)

    def forward(self, window: np.ndarray) -> Tensor:
        """``(R, W, C)`` history -> ``(R, C)`` prediction (B=1 wrapper)."""
        window = nn.as_input(window)
        if window.ndim != 3:
            raise ValueError(f"expected a (R, W, C) window, got shape {window.shape}")
        return self.forward_batch(window[None]).squeeze(0)

    def forward_batch(self, windows: np.ndarray) -> Tensor:
        """``(B, R, W, C)`` stacked histories -> ``(B, R, C)`` predictions."""
        windows = nn.as_input(windows)
        if windows.ndim != 4:
            raise ValueError(f"expected a (B, R, W, C) batch, got shape {windows.shape}")
        supports = self.fixed_supports + [self.adaptive_adjacency()]
        x = self.input_proj(Tensor(windows)).transpose(0, 1, 3, 2)  # (B, R, hidden, W)
        skip_total: Tensor | None = None
        for layer in self.layers:
            x, skip = layer(x, supports)
            skip_total = skip if skip_total is None else skip_total + skip
        return self.head(skip_total.relu())

    def training_loss_batch(self, windows: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean MSE over a stacked batch; its gradient equals the average of
        per-sample ``training_loss`` gradients, so batched and sequential
        trainer paths take identical optimizer steps."""
        return F.mse_loss(self.forward_batch(windows), targets, reduction="mean")
