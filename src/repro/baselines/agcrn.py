"""AGCRN baseline (Bai et al. — NeurIPS 2020).

Adaptive Graph Convolutional Recurrent Network: GRU gates built from
*node-adaptive* graph convolutions.  The adjacency is inferred from
learnable node embeddings (``softmax(relu(E Eᵀ))``) and — AGCRN's other
signature — layer weights are *generated per node* from those same
embeddings (node-adaptive parameter learning), rather than shared.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..training.interface import ForecastModel

__all__ = ["AGCRN"]


class _NAPLConv(nn.Module):
    """Node-adaptive graph convolution: weights generated from embeddings."""

    def __init__(self, embed_dim: int, in_dim: int, out_dim: int, rng):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        # Weight pool: each node's weight = E_r @ pool.
        self.weight_pool = nn.Parameter(nn.init.xavier_uniform((embed_dim, 2 * in_dim * out_dim), rng))
        self.bias_pool = nn.Parameter(nn.init.xavier_uniform((embed_dim, out_dim), rng))

    def forward(self, x: Tensor, node_embed: Tensor, adjacency: Tensor) -> Tensor:
        """``x``: (R, in_dim) -> (R, out_dim)."""
        r = x.shape[0]
        propagated = adjacency @ x  # (R, in_dim)
        features = nn.concatenate([x, propagated], axis=-1)  # (R, 2*in_dim)
        weights = (node_embed @ self.weight_pool).reshape(r, 2 * self.in_dim, self.out_dim)
        bias = node_embed @ self.bias_pool
        return (features.expand_dims(1) @ weights).squeeze(1) + bias


class _AGCRNCell(nn.Module):
    def __init__(self, embed_dim: int, in_dim: int, hidden: int, rng):
        super().__init__()
        self.hidden = hidden
        self.gate = _NAPLConv(embed_dim, in_dim + hidden, 2 * hidden, rng)
        self.candidate = _NAPLConv(embed_dim, in_dim + hidden, hidden, rng)

    def forward(self, x: Tensor, h: Tensor, node_embed: Tensor, adjacency: Tensor) -> Tensor:
        combined = nn.concatenate([x, h], axis=-1)
        gates = self.gate(combined, node_embed, adjacency).sigmoid()
        r, u = gates[:, : self.hidden], gates[:, self.hidden :]
        cand_in = nn.concatenate([x, r * h], axis=-1)
        candidate = self.candidate(cand_in, node_embed, adjacency).tanh()
        return u * h + (1.0 - u) * candidate


class AGCRN(ForecastModel):
    """Adaptive-graph recurrent forecaster."""

    def __init__(
        self,
        num_regions: int,
        num_categories: int,
        hidden: int = 16,
        embed_dim: int = 8,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_regions = num_regions
        self.hidden = hidden
        self.node_embed = nn.Parameter(nn.init.normal((num_regions, embed_dim), rng, std=0.1))
        self.cell = _AGCRNCell(embed_dim, num_categories, hidden, rng)
        self.head = nn.Linear(hidden, num_categories, rng)

    def adaptive_adjacency(self) -> Tensor:
        scores = (self.node_embed @ self.node_embed.T).relu()
        return F.softmax(scores, axis=-1)

    def forward(self, window: np.ndarray) -> Tensor:
        _, steps, _ = window.shape
        adjacency = self.adaptive_adjacency()
        h = Tensor(np.zeros((self.num_regions, self.hidden)))
        for t in range(steps):
            h = self.cell(Tensor(window[:, t, :]), h, self.node_embed, adjacency)
        return self.head(h)
