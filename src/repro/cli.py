"""Command-line interface for the ST-HSL reproduction.

Subcommands::

    python -m repro.cli generate --city nyc --out events.csv
    python -m repro.cli train --city nyc --epochs 5 --checkpoint model.npz
    python -m repro.cli evaluate --city nyc --checkpoint model.npz
    python -m repro.cli compare --city chicago --models ARIMA STGCN
    python -m repro.cli forecast --city nyc --checkpoint model.npz --horizon 7

All commands operate on the synthetic datasets (deterministic by
``--seed``) at a geometry chosen via ``--rows/--cols/--days``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import nn
from .analysis import ExperimentBudget, train_and_evaluate
from .analysis.visualization import format_table
from .baselines import BASELINE_NAMES, build_baseline
from .core import STHSL, STHSLConfig
from .data import SyntheticCrimeGenerator, load_city, write_events_csv
from .training import Trainer, WindowDataset, evaluate_model
from .training.forecast import evaluate_horizon

__all__ = ["main"]


def _add_data_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--city", choices=("nyc", "chicago"), default="nyc")
    parser.add_argument("--rows", type=int, default=8)
    parser.add_argument("--cols", type=int, default=8)
    parser.add_argument("--days", type=int, default=150)
    parser.add_argument("--seed", type=int, default=0)


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--window", type=int, default=14)
    parser.add_argument("--dim", type=int, default=8)
    parser.add_argument("--hyperedges", type=int, default=32)


def _dataset(args):
    return load_city(args.city, rows=args.rows, cols=args.cols, num_days=args.days, seed=args.seed)


def _config(args, dataset) -> STHSLConfig:
    return STHSLConfig(
        rows=args.rows,
        cols=args.cols,
        num_categories=dataset.num_categories,
        window=args.window,
        dim=args.dim,
        num_hyperedges=args.hyperedges,
        num_global_temporal_layers=2,
    )


def _print_metrics(evaluation) -> None:
    rows = [
        [name, m["mae"], m["mape"]] for name, m in evaluation.per_category().items()
    ]
    overall = evaluation.overall()
    rows.append(["(overall)", overall["mae"], overall["mape"]])
    print(format_table(["category", "MAE", "MAPE"], rows))


def cmd_generate(args) -> int:
    dataset = _dataset(args)
    generator = SyntheticCrimeGenerator(dataset.config, seed=args.seed)
    events = generator.generate_events(dataset.tensor)
    count = write_events_csv(events, args.out)
    print(f"wrote {count:,} crime events to {args.out}")
    return 0


def cmd_train(args) -> int:
    dataset = _dataset(args)
    config = _config(args, dataset)
    model = STHSL(config, seed=args.seed)
    windows = WindowDataset(dataset, window=config.window)
    trainer = Trainer(model, lr=args.lr, weight_decay=config.weight_decay, seed=args.seed)
    result = trainer.fit(
        windows, epochs=args.epochs, train_limit=args.train_limit, patience=args.patience,
        verbose=True,
    )
    print(f"best val MAE {result.best_val_mae:.4f} at epoch {result.best_epoch}")
    if args.checkpoint:
        nn.save_module(model, args.checkpoint)
        print(f"checkpoint saved to {args.checkpoint}")
    _print_metrics(evaluate_model(model, windows))
    return 0


def cmd_evaluate(args) -> int:
    dataset = _dataset(args)
    config = _config(args, dataset)
    model = STHSL(config, seed=args.seed)
    nn.load_module(model, args.checkpoint)
    windows = WindowDataset(dataset, window=config.window)
    _print_metrics(evaluate_model(model, windows))
    return 0


def cmd_compare(args) -> int:
    dataset = _dataset(args)
    budget = ExperimentBudget(
        window=args.window, epochs=args.epochs, train_limit=args.train_limit, seed=args.seed
    )
    scores = {}
    for name in args.models:
        model = build_baseline(name, dataset, window=args.window, hidden=args.dim, seed=args.seed)
        run = train_and_evaluate(model, dataset, budget)
        scores[name] = run.evaluation.overall()
    config = _config(args, dataset)
    sthsl = STHSL(config, seed=args.seed)
    scores["ST-HSL"] = train_and_evaluate(sthsl, dataset, budget).evaluation.overall()
    ranked = sorted(scores.items(), key=lambda kv: kv[1]["mae"])
    rows = [[i + 1, n, s["mae"], s["mape"]] for i, (n, s) in enumerate(ranked)]
    print(format_table(["#", "model", "MAE", "MAPE"], rows))
    return 0


def cmd_forecast(args) -> int:
    dataset = _dataset(args)
    config = _config(args, dataset)
    model = STHSL(config, seed=args.seed)
    nn.load_module(model, args.checkpoint)
    windows = WindowDataset(dataset, window=config.window)
    per_step = evaluate_horizon(model, windows, horizon=args.horizon)
    rows = [[f"T+{k}", m["mae"], m["mape"]] for k, m in per_step.items()]
    print(format_table(["step", "MAE", "MAPE"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic crime event CSV")
    _add_data_args(p)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("train", help="train ST-HSL and report test metrics")
    _add_data_args(p)
    _add_model_args(p)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--lr", type=float, default=1e-3)
    p.add_argument("--train-limit", type=int, default=40)
    p.add_argument("--patience", type=int, default=None)
    p.add_argument("--checkpoint", default=None)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    _add_data_args(p)
    _add_model_args(p)
    p.add_argument("--checkpoint", required=True)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("compare", help="train baselines + ST-HSL and rank them")
    _add_data_args(p)
    _add_model_args(p)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--train-limit", type=int, default=24)
    p.add_argument(
        "--models", nargs="+", default=["ARIMA", "STGCN", "DeepCrime"],
        choices=list(BASELINE_NAMES) + ["HA"],
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("forecast", help="multi-step recursive forecast quality")
    _add_data_args(p)
    _add_model_args(p)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--horizon", type=int, default=7)
    p.set_defaults(func=cmd_forecast)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.seterr(all="ignore")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
