"""Command-line interface for the ST-HSL reproduction.

Subcommands::

    python -m repro.cli generate --city nyc --out events.csv
    python -m repro.cli train --city nyc --epochs 5 --checkpoint model.npz
    python -m repro.cli train --model STGCN --checkpoint stgcn.npz
    python -m repro.cli evaluate --checkpoint model.npz
    python -m repro.cli compare --city chicago --models ARIMA STGCN
    python -m repro.cli forecast --checkpoint model.npz --horizon 7
    python -m repro.cli serve --checkpoint model.npz --concurrency 4
    python -m repro.cli migrate-artifact --checkpoint old.npz --out new.npz
    python -m repro.cli lint --format json

All commands operate on the synthetic datasets (deterministic by
``--seed``) at a geometry chosen via ``--rows/--cols/--days``.  Every
model name is resolved through the :data:`repro.api.REGISTRY` model
registry, so ``train``/``compare`` accept ST-HSL and the whole baseline
zoo uniformly.  Checkpoints are versioned artifacts (npz weights + JSON
manifest): ``evaluate``/``forecast``/``serve`` reconstruct the model
from the file alone, so no model flags need to match the training
invocation, and pre-v2 artifacts upgrade transparently
(``migrate-artifact`` rewrites them on disk).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.experiment import run as run_experiment
from .analysis.visualization import format_table
from .api import REGISTRY, DataSpec, ExperimentBudget, Forecaster, RunSpec
from .data import SyntheticCrimeGenerator, load_city, write_events_csv
from .training import WindowDataset
from .training.forecast import evaluate_horizon

__all__ = ["main", "build_parser"]


def _add_data_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--city", choices=("nyc", "chicago"), default="nyc")
    parser.add_argument("--rows", type=int, default=8)
    parser.add_argument("--cols", type=int, default=8)
    parser.add_argument("--days", type=int, default=150)
    parser.add_argument("--seed", type=int, default=0)


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--window", type=int, default=14)
    parser.add_argument("--dim", type=int, default=8)
    parser.add_argument("--hyperedges", type=int, default=32)


def _data_spec(args) -> DataSpec:
    return DataSpec(
        city=args.city, rows=args.rows, cols=args.cols, num_days=args.days, seed=args.seed
    )


def _budget(args) -> ExperimentBudget:
    return ExperimentBudget(
        window=args.window,
        epochs=args.epochs,
        train_limit=args.train_limit,
        lr=getattr(args, "lr", 1e-3),
        patience=getattr(args, "patience", None),
        seed=args.seed,
    )


def _model_overrides(name: str, args) -> dict:
    # Only ST-HSL exposes extra structural knobs on the CLI.
    if name == "ST-HSL":
        return {"num_hyperedges": args.hyperedges, "num_global_temporal_layers": 2}
    return {}


def _run_spec(args, model: str) -> RunSpec:
    return RunSpec(
        model=model,
        data=_data_spec(args),
        budget=_budget(args),
        hidden=args.dim,
        overrides=_model_overrides(model, args),
    )


def _print_metrics(evaluation) -> None:
    rows = [
        [name, m["mae"], m["mape"]] for name, m in evaluation.per_category().items()
    ]
    overall = evaluation.overall()
    rows.append(["(overall)", overall["mae"], overall["mape"]])
    print(format_table(["category", "MAE", "MAPE"], rows))


def _cmd_generate(args) -> int:
    dataset = _data_spec(args).load()
    generator = SyntheticCrimeGenerator(dataset.config, seed=args.seed)
    events = generator.generate_events(dataset.tensor)
    count = write_events_csv(events, args.out)
    print(f"wrote {count:,} crime events to {args.out}")
    return 0


def _cmd_train(args) -> int:
    spec = _run_spec(args, args.model)
    dataset = spec.data.load()
    forecaster = spec.forecaster()
    forecaster.fit(dataset, verbose=True)
    training = forecaster.training_
    if training.get("best_epoch") is not None:
        print(
            f"best val MAE {training['best_val_mae']:.4f} at epoch {training['best_epoch']}"
        )
    if args.checkpoint:
        forecaster.save(args.checkpoint)
        print(f"artifact saved to {args.checkpoint} ({args.model})")
    _print_metrics(forecaster.evaluate(dataset))
    return 0


def _cmd_evaluate(args) -> int:
    forecaster = Forecaster.load(args.checkpoint)
    print(f"loaded {forecaster.model_name} artifact (window={forecaster.window})")
    dataset = _data_spec(args).load()
    _print_metrics(forecaster.evaluate(dataset))
    return 0


def _cmd_compare(args) -> int:
    dataset = _data_spec(args).load()
    names = list(dict.fromkeys(list(args.models) + ["ST-HSL"]))
    scores = {}
    for name in names:
        spec = _run_spec(args, name)
        run = run_experiment(spec, dataset=dataset)
        scores[name] = run.evaluation.overall()
    ranked = sorted(scores.items(), key=lambda kv: kv[1]["mae"])
    rows = [[i + 1, n, s["mae"], s["mape"]] for i, (n, s) in enumerate(ranked)]
    print(format_table(["#", "model", "MAE", "MAPE"], rows))
    return 0


def _cmd_forecast(args) -> int:
    forecaster = Forecaster.load(args.checkpoint)
    dataset = _data_spec(args).load()
    forecaster.check_compatible(dataset)
    windows = WindowDataset(dataset, window=forecaster.window)
    per_step = evaluate_horizon(forecaster.model, windows, horizon=args.horizon)
    rows = [[f"T+{k}", m["mae"], m["mape"]] for k, m in per_step.items()]
    print(format_table(["step", "MAE", "MAPE"], rows))
    return 0


def _parse_listen(value: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) for ``serve --listen``; 0 = ephemeral."""
    host, _, port = value.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"--listen expects HOST:PORT or PORT, got {value!r}")


def _print_service_stats(stats, edge=None) -> None:
    rows = [[key, value] for key, value in stats.to_dict().items()]
    if edge is not None:
        rows += [[f"edge.{key}", value] for key, value in edge.items()]
    print(format_table(["stat", "value"], rows))


def _cmd_serve(args) -> int:
    """Demo serving session: concurrent clients against a ForecastService.

    Three network shapes share this command: in-process (default),
    ``--listen HOST:PORT`` (start a NetworkServer and drive the demo
    through the RemoteForecastService client SDK over loopback — or
    serve forever with ``--requests 0``), and ``--connect URL`` (drive
    an already-running server).  ``--process-workers N`` swaps the
    in-process model for a WorkerPool of forked worker processes.
    """
    import time as _time

    from .analysis.perf import drive_clients
    from .serving import (
        ForecastService,
        ModelPool,
        NetworkServer,
        RemoteForecastService,
        WorkerPool,
        build_fallback_tier,
    )

    pool = ModelPool(capacity=args.pool_capacity, served_dtype=args.served_dtype)
    forecaster = pool.get(args.checkpoint)
    dataset = _data_spec(args).load()
    forecaster.check_compatible(dataset)
    window = forecaster.window
    days = range(window, dataset.num_days)
    windows = [dataset.tensor[:, day - window : day, :] for day in days]
    requests = [windows[i % len(windows)] for i in range(args.requests)]

    if args.connect:
        # Client mode: the checkpoint only shapes the request windows;
        # the model lives on the other side of the wire.
        client = RemoteForecastService(args.connect)
        try:
            health = client.health()
            print(
                f"driving {client.url} (model={health.get('model') or 'unnamed'}, "
                f"running={health.get('running')}) with {len(requests)} requests "
                f"x{args.concurrency} clients"
            )
            if not requests:
                return 0
            client.predict(requests[0])  # connection + model warm-up
            drive_clients(client, requests, min(args.concurrency, len(requests)))
            _print_service_stats(client.stats(), edge=client.stats_raw().get("edge"))
        finally:
            client.stop()
        return 0

    dtype = forecaster.served_dtype or "native"
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms else None
    fallback = build_fallback_tier(forecaster, model=args.fallback) if args.fallback else None
    knobs = []
    if deadline is not None:
        knobs.append(f"deadline={args.deadline_ms}ms")
    if args.max_queue is not None:
        knobs.append(f"max_queue={args.max_queue}")
    if fallback is not None:
        knobs.append(f"fallback={args.fallback}")
    if args.process_workers:
        knobs.append(f"process_workers={args.process_workers}")
    if args.rate_limit:
        knobs.append(f"rate_limit={args.rate_limit}/s")
    print(
        f"serving {forecaster.model_name} (window={window}, "
        f"dtype={dtype}, workers={args.workers}"
        + (", " + ", ".join(knobs) if knobs else "")
        + f") from {args.checkpoint}"
    )

    worker_pool = None
    backend = forecaster
    if args.process_workers:
        worker_pool = WorkerPool(args.checkpoint, workers=args.process_workers).start()
        backend = worker_pool
    try:
        with ForecastService(
            backend,
            max_batch=args.max_batch,
            workers=args.workers,
            deadline=deadline,
            max_queue=args.max_queue,
            fallback=fallback,
        ) as service:
            # Warm-up burst sized so every worker thread builds its
            # per-thread arena before timing (a single request warms only
            # one worker).
            warm = requests[0] if requests else windows[0]
            service.predict_many([warm] * max(args.workers * args.max_batch, 1))
            service.reset_stats()

            if args.listen is None:
                drive_clients(service, requests, min(args.concurrency, len(requests)))
                _print_service_stats(service.stats())
                return 0

            host, port = _parse_listen(args.listen)
            with NetworkServer(
                service,
                host=host,
                port=port,
                rate_limit=args.rate_limit,
                model=forecaster.model_name,
            ) as server:
                print(f"listening on {server.url} (repro.rpc/v1)")
                if not requests:
                    print("serving until interrupted (--requests 0); Ctrl-C to stop")
                    try:
                        while True:
                            _time.sleep(1.0)
                    except KeyboardInterrupt:
                        print("interrupted; shutting down")
                        return 0
                client = RemoteForecastService(server.url)
                try:
                    client.predict(requests[0])  # edge warm-up
                    service.reset_stats()
                    drive_clients(client, requests, min(args.concurrency, len(requests)))
                    _print_service_stats(service.stats(), edge=server.stats())
                finally:
                    client.stop()
    finally:
        if worker_pool is not None:
            worker_pool.stop()
    return 0


def _cmd_migrate_artifact(args) -> int:
    """Rewrite an artifact at the current schema version."""
    from . import nn
    from .api.artifacts import migrate, validate_manifest

    manifest, state = nn.load_archive(args.checkpoint)
    before = (manifest or {}).get("schema")
    manifest = validate_manifest(migrate(manifest))
    if args.served_dtype:
        manifest["served_dtype"] = args.served_dtype
        validate_manifest(manifest)
    out = args.out or args.checkpoint
    nn.save_archive(out, state, manifest)
    print(f"{args.checkpoint}: {before} -> {manifest['schema']} at {out}")
    return 0


def _cmd_lint(args) -> int:
    """Run the repo-invariant linter; exit 1 on unsuppressed findings."""
    from .devtools import all_passes, all_rules, run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.description}")
        for pass_ in all_passes():
            print(f"{pass_.id} (pass): {pass_.description}")
            for rule_id, description in sorted(pass_.emits.items()):
                print(f"  {rule_id}: {description}")
        return 0
    checks = None
    if args.check:
        checks = [part.strip() for part in args.check.split(",") if part.strip()]
    try:
        report = run_lint(root=args.root, checks=checks)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    registered = list(REGISTRY.names())

    p = sub.add_parser("generate", help="write a synthetic crime event CSV")
    _add_data_args(p)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("train", help="train a registered model and report test metrics")
    _add_data_args(p)
    _add_model_args(p)
    p.add_argument("--model", default="ST-HSL", choices=registered)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--lr", type=float, default=1e-3)
    p.add_argument("--train-limit", type=int, default=40)
    p.add_argument("--patience", type=int, default=None)
    p.add_argument("--checkpoint", default=None)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("evaluate", help="evaluate a saved artifact (model comes from the file)")
    _add_data_args(p)
    p.add_argument("--checkpoint", required=True)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("compare", help="train registered models + ST-HSL and rank them")
    _add_data_args(p)
    _add_model_args(p)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--train-limit", type=int, default=24)
    p.add_argument(
        "--models", nargs="+", default=["ARIMA", "STGCN", "DeepCrime"], choices=registered,
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("forecast", help="multi-step recursive forecast from a saved artifact")
    _add_data_args(p)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--horizon", type=int, default=7)
    p.set_defaults(func=_cmd_forecast)

    p = sub.add_parser(
        "serve", help="run a micro-batching forecast service demo and report throughput"
    )
    _add_data_args(p)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--concurrency", type=int, default=4, help="concurrent client threads")
    p.add_argument("--requests", type=int, default=256, help="total predict requests")
    p.add_argument("--max-batch", type=int, default=8, help="micro-batch size cap")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="service worker threads (parallel inference on multi-core hosts)",
    )
    p.add_argument("--pool-capacity", type=int, default=4)
    p.add_argument(
        "--served-dtype",
        choices=("float32", "float64"),
        default="float32",
        help="pool-wide serving dtype (best-effort per model)",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in ms (expired requests shed before compute)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="admission-queue bound (excess submits rejected as overloaded)",
    )
    p.add_argument(
        "--fallback",
        default=None,
        metavar="MODEL",
        help="degraded-fallback tier built from the checkpoint geometry "
        "(an untrained-servable model, e.g. HA)",
    )
    p.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="expose the service over HTTP (repro.rpc/v1) and drive the demo "
        "through the client SDK; port 0 picks an ephemeral port; "
        "--requests 0 serves forever",
    )
    p.add_argument(
        "--connect",
        default=None,
        metavar="URL",
        help="drive an already-running server instead of starting one "
        "(the checkpoint only shapes the request windows)",
    )
    p.add_argument(
        "--process-workers",
        type=int,
        default=None,
        metavar="N",
        help="back the service with N forked worker processes instead of "
        "the in-process model",
    )
    p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help="per-tenant token-bucket rate limit at the network edge "
        "(requires --listen)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "migrate-artifact", help="rewrite a checkpoint artifact at the current schema"
    )
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--out", default=None, help="output path (default: rewrite in place)")
    p.add_argument(
        "--served-dtype",
        choices=("float32", "float64"),
        default=None,
        help="also set the manifest's served_dtype while migrating",
    )
    p.set_defaults(func=_cmd_migrate_artifact)

    p = sub.add_parser(
        "lint", help="run the repo-invariant linter over the repro package"
    )
    p.add_argument(
        "--root", default=None, help="directory to lint (default: the repro package)"
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings (with their reasons) in text output",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    p.add_argument(
        "--check",
        default=None,
        metavar="PASS[,PASS]",
        help="also run semantic passes (e.g. shapes,contracts)",
    )
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.seterr(all="ignore")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
