"""ST-HSL reproduction: Spatial-Temporal Hypergraph Self-Supervised Learning
for Crime Prediction (Li, Huang, Xia, Xu, Pei — ICDE 2022).

Public entry points:

* :mod:`repro.api` — the unified public surface: model registry,
  ``Forecaster`` estimator, versioned checkpoint artifacts, run specs.
* :mod:`repro.serving` — the forecast service layer: model pool,
  cross-request micro-batching service, region-shard router.
* :mod:`repro.nn` — numpy autograd / neural-network substrate.
* :mod:`repro.data` — crime-data pipeline (synthetic generators calibrated
  to the paper's NYC and Chicago datasets, grid segmentation,
  tensorisation, splits, density statistics).
* :mod:`repro.core` — the ST-HSL model itself.
* :mod:`repro.baselines` — the fifteen comparison models of Table III.
* :mod:`repro.training` — trainer, metrics and evaluation helpers.
* :mod:`repro.analysis` — ablations, sweeps, interpretation, efficiency.
"""

__version__ = "1.2.0"

__all__ = ["api", "serving", "nn", "data", "core", "baselines", "training", "analysis"]
