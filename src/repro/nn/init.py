"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic given a seed — a requirement for the
reproducibility protocol in DESIGN.md §5.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "uniform", "zeros", "normal"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = math.sqrt(5.0)) -> np.ndarray:
    """He uniform, the torch default for Linear/Conv layers."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope ** 2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
