"""Module/Parameter machinery, mirroring the torch.nn.Module contract.

A :class:`Module` discovers parameters and child modules through attribute
assignment, supports train/eval mode switching (needed for dropout), and
exposes ``state_dict``/``load_state_dict`` for serialization.
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from .arena import BufferArena
from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "Sequential"]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Parameters and submodules assigned as attributes are registered
    automatically.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its descendants."""
        for _name, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count (useful for capacity matching)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def _arena_state(self) -> dict:
        state = self.__dict__.get("_arenas")
        if state is None:
            # One shared mutable slot; dict.setdefault is atomic under the
            # GIL so two threads racing the first predict agree on one
            # state dict.  (The plain-get fast path above keeps the dict/
            # Lock construction off every subsequent predict call.)
            state = self.__dict__.setdefault(
                "_arenas", {"lock": threading.Lock(), "by_thread": {}, "spares": []}
            )
        return state

    def _inference_arena(self) -> BufferArena:
        """The calling thread's buffer arena for graph-free inference.

        Created on first use and reused across every subsequent predict
        call *from that thread*.  Each thread gets a private arena —
        a :class:`BufferArena` must never be active on two threads at
        once — so concurrent ``predict`` calls on one module are safe
        and bitwise-equal to their sequential answers.  Arenas adopted
        via :meth:`adopt_arena` (and arenas abandoned by finished
        threads) sit in a spare pool that new threads claim before
        allocating fresh, so warm buffers keep circulating.
        """
        state = self._arena_state()
        by_thread = state["by_thread"]
        # Keyed by the Thread *object*, not the ident: idents are reused
        # after a thread dies, so an ident key could hand a dead thread's
        # arena to its ident-successor while a concurrent harvest (working
        # from a momentarily stale liveness snapshot) steals it — object
        # identity is never reused while the entry exists.
        me = threading.current_thread()
        arena = by_thread.get(me)
        if arena is None:
            with state["lock"]:
                # Harvest arenas of threads that have finished, reclaiming
                # their warm buffers for new threads.  The in_active_scope
                # guard additionally shields any thread caught between
                # claiming its arena and activating it.
                dead = [
                    t
                    for t, candidate in by_thread.items()
                    if not t.is_alive() and not candidate.in_active_scope
                ]
                for thread_dead in dead:
                    state["spares"].append(by_thread.pop(thread_dead))
                arena = state["spares"].pop() if state["spares"] else BufferArena()
                by_thread[me] = arena
        return arena

    def adopt_arena(self, arena: BufferArena) -> "Module":
        """Hand this module a (possibly pre-warmed) inference arena.

        The arena joins the module's spare pool and is claimed by the
        next thread that needs one (threads already holding a private
        arena keep it), so a serving pool can pass the buffer pool of an
        evicted model to its replacement — same-shaped workspaces rehit
        instead of being reallocated (see
        :class:`repro.serving.ModelPool`).  Returns ``self``.
        """
        state = self._arena_state()
        with state["lock"]:
            state["spares"].append(arena)
        return self

    def release_arena(self) -> BufferArena | None:
        """Detach and return this module's inference arena(s), if any.

        Consolidates (via :meth:`BufferArena.absorb`) only the arenas
        that are quiescent *by construction*: the calling thread's own
        arena, arenas of threads that no longer exist, and unclaimed
        spares.  An arena mapped to any *other live* thread may enter a
        ``use_arena`` scope at any moment (there is no lock spanning the
        thread's claim and its activation), so those are left in place
        untouched — a pool eviction racing a serving worker never steals
        or aliases a live arena; that worker's warm buffers are simply
        not recycled.  The merged arena's pooled buffers survive
        detachment, so the caller can hand them to another module via
        :meth:`adopt_arena`.  Returns ``None`` when nothing was
        harvestable.
        """
        state = self.__dict__.pop("_arenas", None)
        if state is None:
            return None
        with state["lock"]:
            by_thread = state["by_thread"]
            caller = threading.current_thread()
            candidates = list(state["spares"])
            state["spares"].clear()
            for thread in list(by_thread):
                if thread is caller or not thread.is_alive():
                    candidates.append(by_thread.pop(thread))
        merged = None
        for arena in candidates:
            # Belt and braces for threads invisible to threading.enumerate
            # (foreign/embedded threads): skip anything that activated.
            if arena.in_active_scope:
                continue
            if merged is None:
                merged = arena
                continue
            try:
                merged.absorb(arena)
            except ValueError:  # activated between the check and the absorb
                continue
        return merged

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.astype(param.data.dtype).copy()

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of submodules (registered for traversal)."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for i, module in enumerate(self._items):
            self._modules[str(i)] = module

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
