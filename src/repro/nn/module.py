"""Module/Parameter machinery, mirroring the torch.nn.Module contract.

A :class:`Module` discovers parameters and child modules through attribute
assignment, supports train/eval mode switching (needed for dropout), and
exposes ``state_dict``/``load_state_dict`` for serialization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .arena import BufferArena
from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "Sequential"]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Parameters and submodules assigned as attributes are registered
    automatically.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its descendants."""
        for _name, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count (useful for capacity matching)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def _inference_arena(self) -> BufferArena:
        """The module's buffer arena for graph-free inference, created on
        first use and reused across every subsequent predict call."""
        arena = self.__dict__.get("_predict_arena")
        if arena is None:
            arena = BufferArena()
            self._predict_arena = arena
        return arena

    def adopt_arena(self, arena: BufferArena) -> "Module":
        """Hand this module a (possibly pre-warmed) inference arena.

        Subsequent ``predict``/``predict_batch`` calls allocate from
        ``arena`` instead of a fresh one, so a serving pool can pass the
        buffer pool of an evicted model to its replacement — same-shaped
        workspaces rehit instead of being reallocated (see
        :class:`repro.serving.ModelPool`).  Returns ``self``.
        """
        self._predict_arena = arena
        return self

    def release_arena(self) -> BufferArena | None:
        """Detach and return this module's inference arena, if it has one.

        The arena's pooled buffers survive detachment, so the caller can
        hand them to another module via :meth:`adopt_arena`.
        """
        arena = self.__dict__.pop("_predict_arena", None)
        return arena

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.astype(param.data.dtype).copy()

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of submodules (registered for traversal)."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for i, module in enumerate(self._items):
            self._modules[str(i)] = module

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
