"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

The paper's reference implementation targets PyTorch on GPU; this package
provides the subset of functionality ST-HSL and its fifteen baselines need:
reverse-mode autograd, conv/recurrent/attention layers, optimisers and
checkpointing.  See DESIGN.md §2 for the substitution rationale.
"""

from . import functional, init, kernels, quantize
from .arena import BufferArena, active_arena, use_arena
from .context import ExecutionContext, execution_context
from .kernels import CONV_STRATEGIES, conv_strategy, resolve_conv_strategy
from .quantize import quantize_state
from .layers import (
    GRU,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    Dropout,
    Embedding,
    GRUCell,
    LayerNorm,
    LeakyReLU,
    Linear,
    LSTMCell,
    MultiHeadAttention,
    ReLU,
    Tanh,
)
from .module import Module, ModuleList, Parameter, Sequential
from .ops import conv1d, conv2d
from .optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from .serialization import (
    MANIFEST_KEY,
    load_archive,
    load_module,
    load_state,
    save_archive,
    save_module,
    save_state,
)
from .tensor import (
    Tensor,
    as_input,
    concatenate,
    dtype_scope,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "dtype_scope",
    "as_input",
    "concatenate",
    "stack",
    "where",
    "BufferArena",
    "use_arena",
    "active_arena",
    "ExecutionContext",
    "execution_context",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv1d",
    "Conv2d",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "BatchNorm2d",
    "GRUCell",
    "GRU",
    "LSTMCell",
    "MultiHeadAttention",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "clip_grad_norm",
    "conv1d",
    "conv2d",
    "CONV_STRATEGIES",
    "conv_strategy",
    "resolve_conv_strategy",
    "functional",
    "init",
    "kernels",
    "quantize",
    "quantize_state",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "save_archive",
    "load_archive",
    "MANIFEST_KEY",
]
