"""Convolution primitives for the autograd engine.

Implements 1-D and 2-D cross-correlation (the deep-learning "convolution").
ST-HSL uses 2-D convolutions over the region grid (Eq 2 of the paper) and
1-D convolutions over the time axis (Eqs 3 and 5); several baselines
(ST-ResNet, STGCN, GWN, STDN, DMSTGCN) also build on these primitives.

The forward pass dispatches through :mod:`repro.nn.kernels` — three
interchangeable execution strategies (``im2col``, ``tap_gemm``,
``single_gemm``) selected per call by the thread-local
:class:`~repro.nn.kernels.conv_strategy` setting and its auto-selection
rule table.  This module owns everything around the kernel: autograd
graph construction, the per-strategy backward closures, the col2im
scatter (:func:`_scatter_cols`), and the 1-in/1-out-channel FIR fast
path.  Grad mode and the workspace-supplying arena are read through the
thread-local :class:`~repro.nn.context.ExecutionContext` (via
:func:`~repro.nn.tensor.is_grad_enabled` and
:func:`~repro.nn.arena.request`), so convolutions on concurrent threads
never observe each other's ``no_grad``/``use_arena``/``conv_strategy``
scopes.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .arena import request as _arena_request
from .kernels import conv1d_forward, conv2d_forward, resolve_conv_strategy
from .tensor import Tensor, _padded, is_grad_enabled

__all__ = ["conv2d", "conv1d"]


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


@lru_cache(maxsize=256)
def _im2col_indices(
    height: int, width: int, kh: int, kw: int, stride: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Precompute gather indices mapping an image to patch columns.

    Cached per geometry: the trainer calls the same convolutions every
    window, so rebuilding these index grids dominated small-conv setup
    cost.  Callers must treat the returned arrays as read-only.
    """
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    i0 = np.repeat(np.arange(kh), kw)
    j0 = np.tile(np.arange(kw), kh)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)  # (kh*kw, out_h*out_w)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    return rows, cols, out_h, out_w


@lru_cache(maxsize=256)
def _conv1d_indices(length: int, k: int, stride: int, dilation: int) -> tuple[np.ndarray, int]:
    """Gather indices ``(k, out_l)`` for a 1-D sliding window (cached)."""
    span = (k - 1) * dilation + 1
    out_l = (length - span) // stride + 1
    taps = dilation * np.arange(k).reshape(-1, 1)
    starts = stride * np.arange(out_l).reshape(1, -1)
    return taps + starts, out_l


# An ids entry costs 8 bytes per gradient element (as much as the gradient
# itself), so only modest ones are worth retaining across steps; larger
# geometries rebuild the ids each backward.  With the per-entry cap and 4
# slots the cache pins at most ~128 MB worst-case, and in a steady-state
# training loop (one 2-D and one 1-D conv geometry, train + eval batch
# sizes) far less.
_SCATTER_CACHE_MAX_ELEMENTS = 4_000_000


def _build_scatter_ids(nc: int, spatial_size: int, geometry) -> np.ndarray:
    kind = geometry[0]
    if kind == "2d":
        _, hp, wp, kh, kw, stride = geometry
        rows, cols, _, _ = _im2col_indices(hp, wp, kh, kw, stride)
        positions = (rows * wp + cols).ravel()
    else:
        idx, _ = _conv1d_indices(*geometry[1:])
        positions = idx.ravel()
    offsets = np.arange(nc, dtype=np.intp).reshape(-1, 1) * spatial_size
    return (offsets + positions.reshape(1, -1)).ravel()


@lru_cache(maxsize=4)
def _scatter_ids(nc: int, spatial_size: int, geometry) -> np.ndarray:
    """Flattened bincount ids for a (batch*channels, geometry) scatter.

    ``geometry`` is the hashable key identifying the patch layout (the
    ``_scatter_cols`` dispatch tuple).  Cached because the trainer re-runs
    identical convolutions every step.
    """
    return _build_scatter_ids(nc, spatial_size, geometry)


def _scatter_cols_f64(gcols: np.ndarray, geometry, spatial_size: int) -> np.ndarray:
    """float64 scatter-add: one ``np.bincount`` over flattened offset ids
    (an order of magnitude faster than the ``np.add.at`` buffered scatter)."""
    n, c, p = gcols.shape
    nc = n * c
    if nc * p <= _SCATTER_CACHE_MAX_ELEMENTS:
        ids = _scatter_ids(nc, spatial_size, geometry)
    else:
        ids = _build_scatter_ids(nc, spatial_size, geometry)
    flat = np.bincount(ids, weights=gcols.reshape(nc * p), minlength=nc * spatial_size)
    return flat.reshape(n, c, spatial_size)


def _scatter_cols_native(gcols: np.ndarray, geometry, spatial_size: int) -> np.ndarray:
    """Dtype-native scatter-add: one strided ``+=`` per kernel tap.

    The exact mirror of the tap-fill im2col — each tap's slab lands on a
    strided view of the output, overlaps between patches resolve across
    taps, and no dtype conversion or index array is needed.
    """
    n, c, _ = gcols.shape
    if geometry[0] == "2d":
        _, hp, wp, kh, kw, stride = geometry
        sh, sw = stride
        _, _, out_h, out_w = _im2col_indices(hp, wp, kh, kw, stride)
        taps = gcols.reshape(n, c, kh * kw, out_h, out_w)
        out = np.zeros((n, c, hp, wp), dtype=gcols.dtype)
        for tap in range(kh * kw):
            i, j = divmod(tap, kw)
            out[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += taps[:, :, tap]
        return out.reshape(n, c, spatial_size)
    _, lp, k, stride, dilation = geometry
    _, out_l = _conv1d_indices(lp, k, stride, dilation)
    taps = gcols.reshape(n, c, k, out_l)
    out = np.zeros((n, c, lp), dtype=gcols.dtype)
    for tap in range(k):
        start = tap * dilation
        out[:, :, start : start + stride * out_l : stride] += taps[:, :, tap]
    return out


def _scatter_cols(gcols: np.ndarray, geometry, spatial_size: int) -> np.ndarray:
    """Accumulate patch-column gradients back onto the (flattened) input.

    ``gcols`` is ``(N, C, P)`` where axis ``P`` enumerates patch elements
    and ``geometry`` identifies which spatial position each one lands on.
    Overlapping patches hit the same position several times, so this is a
    scatter-add.  Two implementations, dispatched on dtype (epoch-level
    A/B on the bench geometry):

    * float64 — ``np.bincount`` over offset ids (~6% faster epochs than
      per-tap adds; bincount accumulates in float64 natively);
    * everything else — per-tap strided adds, which keep the gradient in
      its own dtype end to end.  float32 mode previously paid a float64
      round-trip through bincount (~10% of epoch wall-clock).

    Returns ``(N, C, spatial_size)`` in ``gcols``'s dtype.
    """
    if gcols.dtype == np.float64:
        return _scatter_cols_f64(gcols, geometry, spatial_size)
    return _scatter_cols_native(gcols, geometry, spatial_size)


def _add_bias(out_data: np.ndarray, bias_view: np.ndarray) -> np.ndarray:
    """Add a broadcast bias to a conv output.

    In place when dtypes match — the matmul/FIR output is exclusively
    ours on both the training and inference paths — falling back to the
    promoting out-of-place add for mixed dtypes.
    """
    if bias_view.dtype == out_data.dtype:
        out_data += bias_view
        return out_data
    return out_data + bias_view


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D cross-correlation.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Integer or ``(h, w)`` pair.

    Returns
    -------
    Tensor of shape ``(N, C_out, H_out, W_out)``.
    """
    transfer = getattr(x.data, "__conv2d_transfer__", None)
    if transfer is not None:
        # Abstract shape checking: the transfer rule restates the output
        # geometry shared by all kernels.py strategies.  It must run
        # before any concrete geometry math so symbolic dims never reach
        # the lru-cached index builders.
        return Tensor._from_array(
            transfer(
                weight.data, None if bias is None else bias.data, stride, padding
            )
        )
    stride = _pair(stride)
    ph, pw = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")

    inference = not is_grad_enabled()
    hp, wp = h + 2 * ph, w + 2 * pw
    _, _, out_h, out_w = _im2col_indices(hp, wp, kh, kw, stride)
    strategy = resolve_conv_strategy(
        "conv2d", x.data.dtype, n * out_h * out_w, grad_enabled=not inference
    )
    # The kernel owns padding + workspace layout; workspaces are
    # arena-pooled on the no-grad path only (during training the saved
    # patch matrix must survive until backward, so it stays fresh).
    out_data, saved = conv2d_forward(
        x.data, weight.data, stride, (ph, pw), out_h, out_w, strategy, reuse=inference
    )
    if bias is not None:
        out_data = _add_bias(out_data, bias.data.reshape(1, c_out, 1))
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if inference:
        return Tensor._from_array(out_data)

    parents = [x, weight] + ([bias] if bias is not None else [])
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    geometry = ("2d", hp, wp, kh, kw, stride)

    def scatter_gx(gcols: np.ndarray) -> None:
        gx_pad = _scatter_cols(gcols, geometry, hp * wp).reshape(n, c_in, hp, wp)
        # The un-padded slice is a view of the fresh gx_pad buffer, which
        # no other node references, so it is safe to adopt without copy.
        gx = gx_pad[:, :, ph : ph + h, pw : pw + w] if (ph or pw) else gx_pad
        Tensor._accum(x, gx, own=True)

    def backward(out: Tensor) -> None:
        grad = out.grad.reshape(n, c_out, out_h * out_w)
        if bias is not None and bias.requires_grad:
            Tensor._accum(bias, grad.sum(axis=(0, 2)), own=True)
        if saved.strategy == "tap_gemm":
            _conv2d_tap_backward(
                x, weight, saved.x_pad, grad, stride, (ph, pw), (out_h, out_w)
            )
            return
        if saved.strategy == "single_gemm":
            # cols live in the gemm's (C_in*K, N*L) layout; fold the
            # gradient the same way and both grads are single gemms.
            grad2 = np.ascontiguousarray(grad.transpose(1, 0, 2)).reshape(
                c_out, n * out_h * out_w
            )
            cols2 = saved.cols.reshape(c_in * kh * kw, n * out_h * out_w)
            if weight.requires_grad:
                gw = np.matmul(grad2, cols2.T)
                Tensor._accum(weight, gw.reshape(weight.data.shape), own=True)
            if x.requires_grad:
                gcols2 = np.matmul(w_mat.T, grad2)
                gcols2 = gcols2.reshape(c_in, kh * kw, n, out_h * out_w)
                gcols = np.ascontiguousarray(gcols2.transpose(2, 0, 1, 3))
                scatter_gx(gcols.reshape(n, c_in, kh * kw * out_h * out_w))
            return
        cols_mat = saved.cols
        if weight.requires_grad:
            gw = np.matmul(grad, cols_mat.swapaxes(-1, -2)).sum(axis=0)
            Tensor._accum(weight, gw.reshape(weight.data.shape), own=True)
        if x.requires_grad:
            gcols = np.matmul(w_mat.T, grad)
            scatter_gx(gcols.reshape(n, c_in, kh * kw * out_h * out_w))

    return Tensor._make(out_data, parents, backward)


def _conv2d_tap_backward(
    x: Tensor,
    weight: Tensor,
    x_pad: np.ndarray,
    grad: np.ndarray,
    stride: tuple[int, int],
    padding: tuple[int, int],
    out_hw: tuple[int, int],
) -> None:
    """col2im-free backward for the tap-gemm strategy.

    Mirrors the forward: one gemm per kernel tap against a shifted view,
    so neither gradient ever materializes a patch workspace — the weight
    gradient re-reads each tap slab from the saved padded input, the
    input gradient scatters per-tap products onto strided views of the
    padded canvas.  ``grad`` arrives flattened ``(N, C_out, L)``.
    """
    n = grad.shape[0]
    c_out, c_in, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = out_hw
    length = out_h * out_w
    if weight.requires_grad:
        gw = np.empty_like(weight.data)
        for tap in range(kh * kw):
            i, j = divmod(tap, kw)
            slab = np.ascontiguousarray(
                x_pad[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw]
            ).reshape(n, c_in, length)
            gw[:, :, i, j] = np.matmul(grad, slab.swapaxes(1, 2)).sum(axis=0)
        Tensor._accum(weight, gw, own=True)
    if x.requires_grad:
        gx_pad = np.zeros_like(x_pad)
        for tap in range(kh * kw):
            i, j = divmod(tap, kw)
            view = gx_pad[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw]
            view += np.matmul(weight.data[:, :, i, j].T, grad).reshape(
                n, c_in, out_h, out_w
            )
        h, w = x.shape[2:]
        gx = gx_pad[:, :, ph : ph + h, pw : pw + w] if (ph or pw) else gx_pad
        Tensor._accum(x, gx, own=True)


def _conv1d_fir(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    x_data: np.ndarray,
    stride: int,
    dilation: int,
    out_l: int,
    padding: int,
    length: int,
) -> Tensor:
    """``conv1d`` for 1-in/1-out channels: per-tap scaled strided adds."""
    n = x_data.shape[0]
    k = weight.shape[-1]
    w_taps = weight.data.reshape(k)
    inference = not is_grad_enabled()

    def tap_slice(tap: int) -> slice:
        start = tap * dilation
        return slice(start, start + stride * out_l, stride)

    first = x_data[:, :, tap_slice(0)]
    out_buffer = None
    if inference and w_taps.dtype == x_data.dtype and first.flags.c_contiguous:
        out_buffer = _arena_request((n, 1, out_l), x_data.dtype)
    out_data = np.multiply(first, w_taps[0], out=out_buffer)
    for tap in range(1, k):
        out_data += w_taps[tap] * x_data[:, :, tap_slice(tap)]
    if bias is not None:
        out_data = _add_bias(out_data, bias.data.reshape(1, 1, 1))
    if inference:
        return Tensor._from_array(out_data)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(out: Tensor) -> None:
        grad = out.grad
        if bias is not None and bias.requires_grad:
            Tensor._accum(bias, grad.sum().reshape(1), own=True)
        if weight.requires_grad:
            gw = np.array(
                [np.vdot(grad, np.ascontiguousarray(x_data[:, :, tap_slice(tap)])) for tap in range(k)],
                dtype=grad.dtype,
            )
            Tensor._accum(weight, gw.reshape(weight.data.shape), own=True)
        if x.requires_grad:
            gx_pad = np.zeros((n, 1, x_data.shape[2]), dtype=x.data.dtype)
            for tap in range(k):
                gx_pad[:, :, tap_slice(tap)] += w_taps[tap] * grad
            gx = gx_pad[:, :, padding : padding + length] if padding else gx_pad
            Tensor._accum(x, gx, own=True)

    return Tensor._make(out_data, parents, backward)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D cross-correlation with optional dilation.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, L)``.
    weight:
        Kernel of shape ``(C_out, C_in, K)``.
    bias:
        Optional bias ``(C_out,)``.
    dilation:
        Spacing between kernel taps; dilated causal convolutions are the
        temporal mechanism in the Graph WaveNet baseline.
    """
    transfer = getattr(x.data, "__conv1d_transfer__", None)
    if transfer is not None:
        return Tensor._from_array(
            transfer(
                weight.data,
                None if bias is None else bias.data,
                stride,
                padding,
                dilation,
            )
        )
    n, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")

    inference = not is_grad_enabled()
    lp = length + 2 * padding
    span = (k - 1) * dilation + 1
    if lp < span:
        raise ValueError(f"conv1d output length <= 0 (L={length}, k={k}, dilation={dilation})")
    _, out_l = _conv1d_indices(lp, k, stride, dilation)

    if c_in == 1 and c_out == 1:
        # FIR fast path for single-channel kernels (ST-HSL's Eq-5 shared
        # depthwise temporal conv runs here with huge N): k scaled strided
        # adds replace im2col + matmul entirely.
        x_data = x.data
        if padding:
            pad_width = ((0, 0), (0, 0), (padding, padding))
            x_data = _padded(x_data, pad_width) if inference else np.pad(x_data, pad_width)
        return _conv1d_fir(x, weight, bias, x_data, stride, dilation, out_l, padding, length)

    strategy = resolve_conv_strategy(
        "conv1d", x.data.dtype, n * out_l, grad_enabled=not inference
    )
    out_data, saved = conv1d_forward(
        x.data, weight.data, stride, padding, dilation, out_l, strategy, reuse=inference
    )
    if bias is not None:
        out_data = _add_bias(out_data, bias.data.reshape(1, c_out, 1))
    if inference:
        return Tensor._from_array(out_data)

    parents = [x, weight] + ([bias] if bias is not None else [])
    w_mat = weight.data.reshape(c_out, c_in * k)
    geometry = ("1d", lp, k, stride, dilation)

    def scatter_gx(gcols: np.ndarray) -> None:
        gx_pad = _scatter_cols(gcols, geometry, lp)
        gx = gx_pad[:, :, padding : padding + length] if padding else gx_pad
        Tensor._accum(x, gx, own=True)

    def backward(out: Tensor) -> None:
        grad = out.grad
        if bias is not None and bias.requires_grad:
            Tensor._accum(bias, grad.sum(axis=(0, 2)), own=True)
        if saved.strategy == "tap_gemm":
            _conv1d_tap_backward(
                x, weight, saved.x_pad, grad, stride, dilation, padding, out_l, length
            )
            return
        if saved.strategy == "single_gemm":
            grad2 = np.ascontiguousarray(grad.transpose(1, 0, 2)).reshape(c_out, n * out_l)
            cols2 = saved.cols.reshape(c_in * k, n * out_l)
            if weight.requires_grad:
                gw = np.matmul(grad2, cols2.T)
                Tensor._accum(weight, gw.reshape(weight.data.shape), own=True)
            if x.requires_grad:
                gcols2 = np.matmul(w_mat.T, grad2).reshape(c_in, k, n, out_l)
                gcols = np.ascontiguousarray(gcols2.transpose(2, 0, 1, 3))
                scatter_gx(gcols.reshape(n, c_in, k * out_l))
            return
        cols_mat = saved.cols
        if weight.requires_grad:
            gw = np.matmul(grad, cols_mat.swapaxes(-1, -2)).sum(axis=0)
            Tensor._accum(weight, gw.reshape(weight.data.shape), own=True)
        if x.requires_grad:
            gcols = np.matmul(w_mat.T, grad).reshape(n, c_in, k * out_l)
            scatter_gx(gcols)

    return Tensor._make(out_data, parents, backward)


def _conv1d_tap_backward(
    x: Tensor,
    weight: Tensor,
    x_pad: np.ndarray,
    grad: np.ndarray,
    stride: int,
    dilation: int,
    padding: int,
    out_l: int,
    length: int,
) -> None:
    """col2im-free backward for the 1-D tap-gemm strategy (see 2-D twin)."""
    n = grad.shape[0]
    c_out, c_in, k = weight.shape
    if weight.requires_grad:
        gw = np.empty_like(weight.data)
        for tap in range(k):
            start = tap * dilation
            slab = np.ascontiguousarray(x_pad[:, :, start : start + stride * out_l : stride])
            gw[:, :, tap] = np.matmul(grad, slab.swapaxes(1, 2)).sum(axis=0)
        Tensor._accum(weight, gw, own=True)
    if x.requires_grad:
        gx_pad = np.zeros_like(x_pad)
        for tap in range(k):
            start = tap * dilation
            gx_pad[:, :, start : start + stride * out_l : stride] += np.matmul(
                weight.data[:, :, tap].T, grad
            )
        gx = gx_pad[:, :, padding : padding + length] if padding else gx_pad
        Tensor._accum(x, gx, own=True)
