"""Convolution primitives for the autograd engine.

Implements 1-D and 2-D cross-correlation (the deep-learning "convolution")
via im2col/col2im.  ST-HSL uses 2-D convolutions over the region grid
(Eq 2 of the paper) and 1-D convolutions over the time axis (Eqs 3 and 5);
several baselines (ST-ResNet, STGCN, GWN, STDN, DMSTGCN) also build on
these primitives.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["conv2d", "conv1d"]


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col_indices(
    height: int, width: int, kh: int, kw: int, stride: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Precompute gather indices mapping an image to patch columns."""
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    i0 = np.repeat(np.arange(kh), kw)
    j0 = np.tile(np.arange(kw), kh)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)  # (kh*kw, out_h*out_w)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    return rows, cols, out_h, out_w


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D cross-correlation.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Integer or ``(h, w)`` pair.

    Returns
    -------
    Tensor of shape ``(N, C_out, H_out, W_out)``.
    """
    stride = _pair(stride)
    ph, pw = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")

    x_data = x.data
    if ph or pw:
        x_data = np.pad(x_data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    hp, wp = x_data.shape[2:]
    rows, cols, out_h, out_w = _im2col_indices(hp, wp, kh, kw, stride)

    # cols_mat: (N, C_in, kh*kw, out_h*out_w) -> (N, C_in*kh*kw, L)
    patches = x_data[:, :, rows, cols]
    cols_mat = patches.reshape(n, c_in * kh * kw, out_h * out_w)
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    out_data = np.einsum("ok,nkl->nol", w_mat, cols_mat)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1)
    out_data = out_data.reshape(n, c_out, out_h, out_w)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(out: Tensor) -> None:
        grad = out.grad.reshape(n, c_out, out_h * out_w)
        if bias is not None and bias.requires_grad:
            Tensor._accum(bias, grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            gw = np.einsum("nol,nkl->ok", grad, cols_mat)
            Tensor._accum(weight, gw.reshape(weight.data.shape))
        if x.requires_grad:
            gcols = np.einsum("ok,nol->nkl", w_mat, grad)
            gcols = gcols.reshape(n, c_in, kh * kw, out_h * out_w)
            gx_pad = np.zeros((n, c_in, hp, wp), dtype=x.data.dtype)
            np.add.at(gx_pad, (slice(None), slice(None), rows, cols), gcols)
            gx = gx_pad[:, :, ph : ph + h, pw : pw + w] if (ph or pw) else gx_pad
            Tensor._accum(x, gx)

    return Tensor._make(out_data, parents, backward)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D cross-correlation with optional dilation.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, L)``.
    weight:
        Kernel of shape ``(C_out, C_in, K)``.
    bias:
        Optional bias ``(C_out,)``.
    dilation:
        Spacing between kernel taps; dilated causal convolutions are the
        temporal mechanism in the Graph WaveNet baseline.
    """
    n, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")

    x_data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding))) if padding else x.data
    lp = x_data.shape[2]
    span = (k - 1) * dilation + 1
    out_l = (lp - span) // stride + 1
    if out_l <= 0:
        raise ValueError(f"conv1d output length {out_l} <= 0 (L={length}, k={k}, dilation={dilation})")

    taps = dilation * np.arange(k).reshape(-1, 1)
    starts = stride * np.arange(out_l).reshape(1, -1)
    idx = taps + starts  # (k, out_l)

    patches = x_data[:, :, idx]  # (N, C_in, k, out_l)
    cols_mat = patches.reshape(n, c_in * k, out_l)
    w_mat = weight.data.reshape(c_out, c_in * k)
    out_data = np.einsum("ok,nkl->nol", w_mat, cols_mat)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(out: Tensor) -> None:
        grad = out.grad
        if bias is not None and bias.requires_grad:
            Tensor._accum(bias, grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            gw = np.einsum("nol,nkl->ok", grad, cols_mat)
            Tensor._accum(weight, gw.reshape(weight.data.shape))
        if x.requires_grad:
            gcols = np.einsum("ok,nol->nkl", w_mat, grad)
            gcols = gcols.reshape(n, c_in, k, out_l)
            gx_pad = np.zeros((n, c_in, lp), dtype=x.data.dtype)
            np.add.at(gx_pad, (slice(None), slice(None), idx), gcols)
            gx = gx_pad[:, :, padding : padding + length] if padding else gx_pad
            Tensor._accum(x, gx)

    return Tensor._make(out_data, parents, backward)
