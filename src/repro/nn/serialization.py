"""Model checkpointing: save/load state dicts as compressed npz archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: dict[str, np.ndarray], path: str | Path) -> None:
    """Persist a state dict to ``path`` (npz).  Keys may contain dots."""
    np.savez_compressed(str(path), **state)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    with np.load(str(path)) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str | Path) -> None:
    """Save a module's parameters (architecture is reconstructed by code)."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    module.load_state_dict(load_state(path))
    return module
