"""Model checkpointing: save/load state dicts as compressed npz archives.

Two layers live here:

* the bare state-dict round-trip (``save_module``/``load_module``), where
  the architecture is reconstructed by code and the caller must re-supply
  the exact construction flags; and
* manifest-carrying archives (``save_archive``/``load_archive``): the same
  npz plus an embedded JSON document describing the payload.  The schema
  of that manifest is owned by :mod:`repro.api.artifacts` — this module
  only knows how to embed and extract it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "MANIFEST_KEY",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "save_archive",
    "load_archive",
]

#: npz entry holding the JSON manifest.  Parameter names are dotted
#: attribute paths, so the dunder key can never collide with one.
MANIFEST_KEY = "__manifest__"


def save_state(state: dict[str, np.ndarray], path: str | Path) -> None:
    """Persist a state dict to ``path`` (npz).  Keys may contain dots."""
    np.savez_compressed(str(path), **state)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    with np.load(str(path)) as archive:
        return {key: archive[key] for key in archive.files if key != MANIFEST_KEY}


def save_module(module: Module, path: str | Path) -> None:
    """Save a module's parameters (architecture is reconstructed by code)."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    module.load_state_dict(load_state(path))
    return module


def save_archive(path: str | Path, state: dict[str, np.ndarray], manifest: dict) -> None:
    """Persist ``state`` plus a JSON ``manifest`` as one npz archive.

    The manifest is stored under :data:`MANIFEST_KEY` as a JSON string;
    floats survive exactly (``json`` serialises via ``repr``, which
    round-trips IEEE doubles bit-for-bit).
    """
    payload = {MANIFEST_KEY: np.asarray(json.dumps(manifest))}
    payload.update(state)
    np.savez_compressed(str(path), **payload)


def load_archive(path: str | Path) -> tuple[dict | None, dict[str, np.ndarray]]:
    """Read an npz archive back as ``(manifest, state)``.

    ``manifest`` is ``None`` for plain :func:`save_state` archives, which
    lets callers distinguish self-describing artifacts from bare state
    dicts and report a useful error.
    """
    with np.load(str(path)) as archive:
        manifest = None
        if MANIFEST_KEY in archive.files:
            manifest = json.loads(str(archive[MANIFEST_KEY]))
        state = {key: archive[key] for key in archive.files if key != MANIFEST_KEY}
    return manifest, state
