"""Convolution execution kernels and the strategy-dispatch layer.

:mod:`repro.nn.ops` historically had exactly one way to run a
convolution: im2col (materialize every kernel-tap slab into a patch
workspace, then one broadcast gemm per sample).  That is a good default,
but on the paper-scale grid the im2col *fill* is pure memory traffic —
~40% of conv2d time — and the broadcast ``(C_out, K) @ (N, K, L)``
matmul decomposes into ``N`` small BLAS calls whose launch overhead
dominates on toy grids.  This module implements three interchangeable
execution strategies and the dispatch layer that picks between them:

``im2col``
    The baseline: explicit padding, per-tap strided copies into an
    ``(N, C*K, L)`` workspace, one broadcast gemm.  Best backward
    (the saved workspace feeds the weight gradient directly), best
    float32 forward on small grids.

``tap_gemm``
    Direct per-tap gemm: for every kernel tap, multiply ``weight[tap]``
    against a *shifted view* of the input and accumulate — the im2col
    workspace is never materialized, so peak workspace bytes drop by
    ~``K``x (locked by the arena-stats test).  Pays one extra pass of
    accumulation traffic per tap, which on this container's BLAS makes
    it a memory-optimised rather than a throughput-optimised kernel.

``single_gemm``
    Batch-folded im2col: the patch matrix is laid out ``(C*K, N*L)`` —
    filled straight from the *unpadded* input when ``stride == 1``
    (zero frames written in place, no padding pass) — so the whole
    batch contracts in ONE gemm instead of ``N``, followed by a single
    output transpose.  Measured on this container it is the fastest
    float64 kernel at both bench geometries (6x6 and 16x16) and the
    fastest float32 kernel once ``N*L`` is large enough to amortise
    the transpose.

Strategy selection is thread-local state on the
:class:`~repro.nn.context.ExecutionContext` (the :class:`conv_strategy`
scope), defaulting to ``"auto"``: training always routes to ``im2col``
(its saved workspace makes the cheapest backward), inference resolves
through a first-match rule table (:data:`DEFAULT_AUTO_RULES`,
overridable per scope) keyed on op, dtype and batch-spatial size.  All
strategies are tolerance-equivalent, not bitwise: gemm summation order
differs (locked by ``tests/nn/test_conv_kernels.py``).
"""

from __future__ import annotations

import numpy as np

from .arena import request as _arena_request
from .tensor import _padded

__all__ = [
    "CONV_STRATEGIES",
    "ConvSaved",
    "DEFAULT_AUTO_RULES",
    "active_conv_strategy",
    "conv1d_forward",
    "conv2d_forward",
    "conv_strategy",
    "resolve_conv_strategy",
]

# Imported late-bound style to keep a single context object in play.
from .context import _CONTEXT as _CTX

#: The registered convolution execution strategies.
CONV_STRATEGIES = ("im2col", "tap_gemm", "single_gemm")

#: Auto-selection rule table: ``(op, dtype, min_batch_spatial, strategy)``
#: rows, first match wins, fall-through is ``im2col``.  ``batch_spatial``
#: is ``N * L`` (batch x output positions) — the gemm's folded column
#: count, which is what decides whether single_gemm's output transpose
#: amortises.  Thresholds measured on this container (see
#: docs/architecture.md "Convolution kernels"): float64 wants the
#: batch-folded gemm everywhere; float32 only once the fold is big
#: enough (~8k columns, i.e. paper-scale grids, not the 6x6 toy).
DEFAULT_AUTO_RULES = (
    ("conv2d", "float64", 0, "single_gemm"),
    ("conv1d", "float64", 0, "single_gemm"),
    ("conv2d", "float32", 8192, "single_gemm"),
)


def active_conv_strategy() -> str:
    """The calling thread's requested strategy (``"auto"`` by default)."""
    return _CTX.conv_strategy


def resolve_conv_strategy(
    op: str, dtype, batch_spatial: int, grad_enabled: bool = False
) -> str:
    """Resolve the strategy an ``op`` call should execute with.

    An explicit :class:`conv_strategy` scope wins outright.  Under
    ``"auto"``: training forwards resolve to ``im2col`` (the saved patch
    workspace makes the cheapest weight-gradient gemm), inference walks
    the active rule table and takes the first row matching
    ``(op, dtype)`` whose ``min_batch_spatial`` threshold is met::

        strategy = resolve_conv_strategy("conv2d", np.float64, n * out_h * out_w)
    """
    setting = _CTX.conv_strategy
    if setting != "auto":
        return setting
    if grad_enabled:
        return "im2col"
    name = np.dtype(dtype).name
    rules = _CTX.conv_rules if _CTX.conv_rules is not None else DEFAULT_AUTO_RULES
    for rule_op, rule_dtype, min_spatial, strategy in rules:
        if rule_op == op and rule_dtype == name and batch_spatial >= int(min_spatial):
            return strategy
    return "im2col"


class conv_strategy:
    """Context manager forcing a convolution strategy on the calling thread.

    ``strategy`` is one of :data:`CONV_STRATEGIES` or ``"auto"``;
    ``rules`` optionally overrides the auto-selection table (same row
    format as :data:`DEFAULT_AUTO_RULES`) for the scope's duration.
    Thread-local, nestable, restores the previous setting on exit::

        with nn.conv_strategy("tap_gemm"):
            model.predict(window)            # every conv runs tap-gemm

        with nn.conv_strategy("auto", rules=(("conv2d", "float32", 0, "single_gemm"),)):
            model32.predict(window)          # float32 conv2d folds the batch
    """

    def __init__(self, strategy: str = "auto", rules=None):
        if strategy != "auto" and strategy not in CONV_STRATEGIES:
            raise ValueError(
                f"unknown conv strategy {strategy!r}; expected 'auto' or one of {CONV_STRATEGIES}"
            )
        self._strategy = strategy
        self._rules = tuple(tuple(row) for row in rules) if rules is not None else None
        self._prev: tuple | None = None

    def __enter__(self) -> "conv_strategy":
        self._prev = (_CTX.conv_strategy, _CTX.conv_rules)
        _CTX.conv_strategy = self._strategy
        if self._rules is not None:
            _CTX.conv_rules = self._rules
        return self

    def __exit__(self, *exc) -> None:
        _CTX.conv_strategy, _CTX.conv_rules = self._prev


# ----------------------------------------------------------------------
# Shared workspace plumbing
# ----------------------------------------------------------------------
def _workspace(shape: tuple[int, ...], dtype, reuse: bool) -> np.ndarray:
    """A conv workspace buffer: arena-pooled on the inference fast path."""
    if reuse:
        buffer = _arena_request(shape, dtype)
        if buffer is not None:
            return buffer
    return np.empty(shape, dtype=dtype)


def _fill_cols2d(
    x: np.ndarray, kh: int, kw: int, stride: tuple[int, int], out_h: int, out_w: int,
    reuse: bool = False,
) -> np.ndarray:
    """im2col by per-tap strided copies: ``(N, C, H, W) -> (N, C*KH*KW, L)``.

    Filling one kernel-tap slab at a time keeps every copy a large strided
    block, which is ~10x faster than the equivalent single fancy-index
    gather on batched inputs (fancy indexing pays per-element overhead).
    """
    n, c, _, _ = x.shape
    sh, sw = stride
    cols = _workspace((n, c, kh * kw, out_h * out_w), x.dtype, reuse)
    view = cols.reshape(n, c, kh * kw, out_h, out_w)
    for tap in range(kh * kw):
        i, j = divmod(tap, kw)
        view[:, :, tap] = x[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def _fill_cols1d(
    x: np.ndarray, k: int, stride: int, dilation: int, out_l: int, reuse: bool = False
) -> np.ndarray:
    """1-D im2col by per-tap strided copies: ``(N, C, L) -> (N, C*K, out_l)``."""
    n, c, _ = x.shape
    cols = _workspace((n, c, k, out_l), x.dtype, reuse)
    for tap in range(k):
        start = tap * dilation
        cols[:, :, tap] = x[:, :, start : start + stride * out_l : stride]
    return cols.reshape(n, c * k, out_l)


def _pad2d(x: np.ndarray, ph: int, pw: int, reuse: bool) -> np.ndarray:
    """Zero-pad the trailing two axes (arena-pooled on the no-grad path)."""
    if not (ph or pw):
        return x
    pad_width = ((0, 0), (0, 0), (ph, ph), (pw, pw))
    return _padded(x, pad_width) if reuse else np.pad(x, pad_width)


def _pad1d(x: np.ndarray, padding: int, reuse: bool) -> np.ndarray:
    """Zero-pad the trailing axis (arena-pooled on the no-grad path)."""
    if not padding:
        return x
    pad_width = ((0, 0), (0, 0), (padding, padding))
    return _padded(x, pad_width) if reuse else np.pad(x, pad_width)


class ConvSaved:
    """What a forward kernel hands the backward closure.

    ``cols`` is the patch workspace in the *strategy's own layout*
    (``(N, C*K, L)`` for im2col, ``(C, K, N, L)`` for single_gemm,
    ``None`` for tap_gemm — it never builds one); ``x_pad`` is the
    explicitly padded input when the strategy materialized it (tap_gemm's
    weight gradient re-reads the tap slabs from it).
    """

    __slots__ = ("strategy", "cols", "x_pad")

    def __init__(self, strategy: str, cols: np.ndarray | None, x_pad: np.ndarray | None):
        self.strategy = strategy
        self.cols = cols
        self.x_pad = x_pad


# ----------------------------------------------------------------------
# conv2d forward kernels
# ----------------------------------------------------------------------
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    stride: tuple[int, int],
    padding: tuple[int, int],
    out_h: int,
    out_w: int,
    strategy: str,
    reuse: bool,
) -> tuple[np.ndarray, ConvSaved]:
    """Run one conv2d forward under ``strategy``.

    ``x`` is the raw *unpadded* ``(N, C_in, H, W)`` input; padding is the
    kernel's business (im2col/tap_gemm pad explicitly, single_gemm writes
    zero frames into its workspace for stride-1 geometry and skips the
    padding pass entirely).  Returns ``(out, saved)`` with ``out`` of
    shape ``(N, C_out, out_h * out_w)``; ``reuse`` routes workspaces
    through the active :class:`~repro.nn.BufferArena`.

    Mixed input/weight dtypes fall back to im2col — the alternative
    kernels use ``out=`` gemms, which require a single common dtype.
    """
    if weight.dtype != x.dtype:
        strategy = "im2col"
    if strategy == "single_gemm":
        return _conv2d_single_gemm(x, weight, stride, padding, out_h, out_w, reuse)
    if strategy == "tap_gemm":
        return _conv2d_tap_gemm(x, weight, stride, padding, out_h, out_w, reuse)
    return _conv2d_im2col(x, weight, stride, padding, out_h, out_w, reuse)


def _conv2d_im2col(x, weight, stride, padding, out_h, out_w, reuse):
    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    x_pad = _pad2d(x, *padding, reuse)
    cols_mat = _fill_cols2d(x_pad, kh, kw, stride, out_h, out_w, reuse=reuse)
    w_mat = weight.reshape(c_out, c_in * kh * kw)
    gemm_out = None
    if reuse and w_mat.dtype == cols_mat.dtype:
        gemm_out = _arena_request((n, c_out, out_h * out_w), w_mat.dtype)
    # (C_out, K) @ (N, K, L) broadcast matmul: hits BLAS, unlike np.einsum.
    out = np.matmul(w_mat, cols_mat, out=gemm_out)
    return out, ConvSaved("im2col", cols_mat, x_pad if padding != (0, 0) else None)


def _conv2d_single_gemm(x, weight, stride, padding, out_h, out_w, reuse):
    n, _, h, w = x.shape
    c_out, c_in, kh, kw = weight.shape
    ph, pw = padding
    sh, sw = stride
    taps = kh * kw
    length = out_h * out_w
    cols2 = _workspace((c_in, taps, n, out_h, out_w), x.dtype, reuse)
    if stride == (1, 1):
        # Implicit padding: fill straight from the unpadded input and
        # write the zero frame in place — saves the whole padding pass.
        for tap in range(taps):
            i, j = divmod(tap, kw)
            di, dj = i - ph, j - pw
            dst = cols2[:, tap]
            r0, r1 = max(0, -di), min(out_h, h - di)
            c0, c1 = max(0, -dj), min(out_w, w - dj)
            if r0 > 0:
                dst[:, :, :r0, :].fill(0.0)
            if r1 < out_h:
                dst[:, :, r1:, :].fill(0.0)
            if c0 > 0:
                dst[:, :, r0:r1, :c0].fill(0.0)
            if c1 < out_w:
                dst[:, :, r0:r1, c1:].fill(0.0)
            dst[:, :, r0:r1, c0:c1] = x[:, :, r0 + di : r1 + di, c0 + dj : c1 + dj].transpose(
                1, 0, 2, 3
            )
    else:
        x_pad = _pad2d(x, ph, pw, reuse)
        for tap in range(taps):
            i, j = divmod(tap, kw)
            cols2[:, tap] = x_pad[
                :, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw
            ].transpose(1, 0, 2, 3)
    # One gemm over the whole batch: (C_out, C*K) @ (C*K, N*L).
    out2 = _workspace((c_out, n, length), x.dtype, reuse)
    np.matmul(
        weight.reshape(c_out, c_in * taps),
        cols2.reshape(c_in * taps, n * length),
        out=out2.reshape(c_out, n * length),
    )
    out = _workspace((n, c_out, length), x.dtype, reuse)
    np.copyto(out.reshape(n, c_out, out_h, out_w), out2.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3))
    return out, ConvSaved("single_gemm", cols2, None)


def _conv2d_tap_gemm(x, weight, stride, padding, out_h, out_w, reuse):
    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    sh, sw = stride
    length = out_h * out_w
    x_pad = _pad2d(x, *padding, reuse)
    # Accumulate in (N, out_h, C_out, out_w) layout: each tap's shifted
    # view transposes to (N, out_h, C_in, out_w), which matmuls against
    # (C_out, C_in) without any patch workspace at all.
    acc = _workspace((n, out_h, c_out, out_w), x.dtype, reuse)
    tmp = _workspace((n, out_h, c_out, out_w), x.dtype, reuse)
    for tap in range(kh * kw):
        i, j = divmod(tap, kw)
        view = x_pad[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw].transpose(0, 2, 1, 3)
        if tap == 0:
            np.matmul(weight[:, :, i, j], view, out=acc)
        else:
            np.matmul(weight[:, :, i, j], view, out=tmp)
            acc += tmp
    out = _workspace((n, c_out, length), x.dtype, reuse)
    np.copyto(out.reshape(n, c_out, out_h, out_w), acc.transpose(0, 2, 1, 3))
    return out, ConvSaved("tap_gemm", None, x_pad)


# ----------------------------------------------------------------------
# conv1d forward kernels
# ----------------------------------------------------------------------
def conv1d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int,
    padding: int,
    dilation: int,
    out_l: int,
    strategy: str,
    reuse: bool,
) -> tuple[np.ndarray, ConvSaved]:
    """Run one conv1d forward under ``strategy``.

    Same contract as :func:`conv2d_forward` with ``x`` of shape
    ``(N, C_in, L)`` and an output of ``(N, C_out, out_l)``.
    """
    if weight.dtype != x.dtype:
        strategy = "im2col"
    if strategy == "single_gemm":
        return _conv1d_single_gemm(x, weight, stride, padding, dilation, out_l, reuse)
    if strategy == "tap_gemm":
        return _conv1d_tap_gemm(x, weight, stride, padding, dilation, out_l, reuse)
    return _conv1d_im2col(x, weight, stride, padding, dilation, out_l, reuse)


def _conv1d_im2col(x, weight, stride, padding, dilation, out_l, reuse):
    n = x.shape[0]
    c_out, c_in, k = weight.shape
    x_pad = _pad1d(x, padding, reuse)
    cols_mat = _fill_cols1d(x_pad, k, stride, dilation, out_l, reuse=reuse)
    w_mat = weight.reshape(c_out, c_in * k)
    gemm_out = None
    if reuse and w_mat.dtype == cols_mat.dtype:
        gemm_out = _arena_request((n, c_out, out_l), w_mat.dtype)
    out = np.matmul(w_mat, cols_mat, out=gemm_out)
    return out, ConvSaved("im2col", cols_mat, x_pad if padding else None)


def _conv1d_single_gemm(x, weight, stride, padding, dilation, out_l, reuse):
    n, _, length = x.shape
    c_out, c_in, k = weight.shape
    cols2 = _workspace((c_in, k, n, out_l), x.dtype, reuse)
    if stride == 1:
        # Implicit padding (dilation-aware): zero the out-of-range ends in
        # place and copy the valid span from the unpadded input.
        for tap in range(k):
            offset = tap * dilation - padding
            dst = cols2[:, tap]
            l0, l1 = max(0, -offset), min(out_l, length - offset)
            if l0 > 0:
                dst[:, :, :l0].fill(0.0)
            if l1 < out_l:
                dst[:, :, l1:].fill(0.0)
            dst[:, :, l0:l1] = x[:, :, l0 + offset : l1 + offset].transpose(1, 0, 2)
    else:
        x_pad = _pad1d(x, padding, reuse)
        for tap in range(k):
            start = tap * dilation
            cols2[:, tap] = x_pad[:, :, start : start + stride * out_l : stride].transpose(1, 0, 2)
    out2 = _workspace((c_out, n, out_l), x.dtype, reuse)
    np.matmul(
        weight.reshape(c_out, c_in * k),
        cols2.reshape(c_in * k, n * out_l),
        out=out2.reshape(c_out, n * out_l),
    )
    out = _workspace((n, c_out, out_l), x.dtype, reuse)
    np.copyto(out, out2.transpose(1, 0, 2))
    return out, ConvSaved("single_gemm", cols2, None)


def _conv1d_tap_gemm(x, weight, stride, padding, dilation, out_l, reuse):
    n = x.shape[0]
    c_out, c_in, k = weight.shape
    x_pad = _pad1d(x, padding, reuse)
    out = _workspace((n, c_out, out_l), x.dtype, reuse)
    tmp = _workspace((n, c_out, out_l), x.dtype, reuse)
    for tap in range(k):
        start = tap * dilation
        view = x_pad[:, :, start : start + stride * out_l : stride]
        if tap == 0:
            np.matmul(weight[:, :, tap], view, out=out)
        else:
            np.matmul(weight[:, :, tap], view, out=tmp)
            out += tmp
    return out, ConvSaved("tap_gemm", None, x_pad)
