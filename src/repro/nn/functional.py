"""Functional building blocks: activations, losses, similarity measures.

These are composites of the primitive ops in :mod:`repro.nn.tensor`, so
their gradients come for free from the autograd engine.  The convolution
primitives are re-exported from :mod:`repro.nn.ops` for
``torch.nn.functional`` call-site parity (``F.conv2d(...)``); they
dispatch through the kernel strategies in :mod:`repro.nn.kernels`.
"""

from __future__ import annotations

import numpy as np

from .ops import conv1d, conv2d
from .tensor import Tensor

__all__ = [
    "conv1d",
    "conv2d",
    "softmax",
    "log_softmax",
    "normalize",
    "cosine_similarity",
    "mse_loss",
    "l1_loss",
    "huber_loss",
    "binary_cross_entropy_with_logits",
    "info_nce",
    "dropout",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """L2-normalise along ``axis`` (used for cosine similarity in Eq 8)."""
    norm = (x * x).sum(axis=axis, keepdims=True).sqrt()
    return x / (norm + eps)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity of paired vectors along ``axis``."""
    return (normalize(a, axis=axis) * normalize(b, axis=axis)).sum(axis=axis)


def mse_loss(pred: Tensor, target: Tensor | np.ndarray, reduction: str = "mean") -> Tensor:
    """Squared-error loss; ``reduction='sum'`` matches the paper's Eq 10."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def l1_loss(pred: Tensor, target: Tensor | np.ndarray, reduction: str = "mean") -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    err = (pred - target).abs()
    if reduction == "mean":
        return err.mean()
    if reduction == "sum":
        return err.sum()
    return err


def huber_loss(pred: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber loss, used by several traffic baselines for robustness."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    abs_diff = diff.abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def binary_cross_entropy_with_logits(logits: Tensor, target: np.ndarray) -> Tensor:
    """BCE on raw logits, the objective of the hypergraph infomax (Eq 7).

    Uses the stable form ``max(z,0) - z*y + log(1 + exp(-|z|))``.
    """
    target_t = Tensor(np.asarray(target, dtype=logits.data.dtype))
    positive = logits.relu()
    return (positive - logits * target_t + ((-logits.abs()).exp() + 1.0).log()).mean()


def info_nce(anchor: Tensor, positive: Tensor, temperature: float = 0.5) -> Tensor:
    """InfoNCE over row-aligned batches (Eq 8 of the paper).

    ``anchor`` and ``positive`` are ``(..., N, d)``; row ``i`` of each is a
    positive pair, and every other row of ``positive`` provides the
    negatives for anchor ``i``.  Any leading axes are vectorized in a
    single batched matmul — ST-HSL evaluates one InfoNCE term per
    (window, category) pair, so the whole contrastive loss is one call.
    Returns the mean contrastive loss over all leading axes and ``N``.
    """
    a = normalize(anchor, axis=-1)
    p = normalize(positive, axis=-1)
    logits = (a @ p.swapaxes(-1, -2)) * (1.0 / temperature)
    log_probs = log_softmax(logits, axis=-1)
    n = anchor.shape[-2]
    # Extract the positive-pair diagonal with an eye mask: stays a single
    # dense reduction, and broadcasts over any leading batch axes.
    eye = np.eye(n, dtype=log_probs.data.dtype)
    diag = (log_probs * eye).sum(axis=-1)
    return -diag.mean()


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at eval time, scaled mask when training."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return x * Tensor(mask)
