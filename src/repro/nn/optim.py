"""Optimisers: SGD with momentum and Adam, plus gradient clipping.

ST-HSL trains with Adam at lr=1e-3 (paper §IV-A4); the weight-decay term
λ3‖Θ‖² of Eq 10 is applied here as decoupled L2 regularisation so every
model in the comparison shares the same implementation.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineAnnealingLR"]


class Optimizer:
    """Base class holding the parameter list and zero_grad.

    An empty parameter list is allowed — ``step``/``zero_grad`` become
    no-ops — so parameterless models (the statistical baselines, which
    fit at prediction time) flow through the shared trainer without
    dummy-parameter workarounds.
    """

    def __init__(self, params: Iterable[Parameter]):
        self.params = [p for p in params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and optional L2 decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _LRScheduler:
    """Base learning-rate scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr


class StepLR(_LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (handy for monitoring training stability).
    """
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
