"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the ``repro.nn`` substrate.  The paper's
reference implementation is written in PyTorch; that library is not
available in this environment, so we provide a compatible-in-spirit
``Tensor`` class that records a dynamic computation graph and computes
gradients by reverse-mode accumulation.

Design notes
------------
* Every differentiable operation creates a new ``Tensor`` whose
  ``_backward`` closure knows how to push the output gradient to the
  operation's inputs.  ``Tensor.backward`` walks the graph once in reverse
  topological order.
* Gradients of broadcast operands are reduced back to the operand shape by
  :func:`unbroadcast`, mirroring numpy broadcasting semantics exactly.
* Arrays are stored as ``float64`` by default, which keeps finite-difference
  gradient checks (see ``tests/nn/test_gradcheck.py``) tight.
* All ambient execution state — the grad flag, the active arena, the
  default dtype — lives in the thread-local
  :class:`~repro.nn.context.ExecutionContext`, so ``no_grad``/
  ``use_arena``/``dtype_scope`` scopes opened on one thread never leak
  into another; concurrent inference and training are isolated per
  thread.
* Inside :class:`no_grad`, every op takes a *graph-free fast path*: the
  backward closure is never constructed, no parents are tracked, the
  result is wrapped by the slim :meth:`Tensor._from_array` constructor,
  and — when a :class:`~repro.nn.arena.BufferArena` is active — outputs
  are written into reusable preallocated buffers via ufunc ``out=``
  instead of fresh allocations.  The fast path performs the identical
  sequence of IEEE operations, so inference results match the
  graph-building path bitwise (locked by ``tests/api/test_registry.py``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .context import _CONTEXT as _CTX

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "set_default_dtype",
    "get_default_dtype",
    "dtype_scope",
    "as_input",
    "concatenate",
    "stack",
    "where",
]

# ---------------------------------------------------------------------------
# Compute dtype control
# ---------------------------------------------------------------------------
# float64 keeps finite-difference gradient checks tight and is the default;
# float32 halves memory traffic on the conv/matmul hot paths and is exposed
# as an opt-in compute mode (see STHSLConfig.compute_dtype and the perf
# harness under benchmarks/perf/).  float16 is allowed for experimentation
# only: numpy's half ufuncs are software-emulated (~10x slower than
# float32), which is why sub-f32 *serving* quantizes storage instead of
# compute (see repro.nn.quantize).  The active default lives in the
# thread-local ExecutionContext, so a dtype_scope on one thread cannot
# recast tensors another thread is creating concurrently.
_FLOAT64 = np.dtype(np.float64)
_ALLOWED_DTYPES = (np.dtype(np.float16), np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype) -> None:
    """Set the dtype new tensors are created with (float16/float32/float64).

    Integer/bool inputs are always promoted to this dtype; float inputs are
    recast only when a non-float64 default is active, so the float64 default
    preserves historical behaviour exactly.  Applies to the calling thread
    only (the state is thread-local).
    """
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED_DTYPES:
        raise ValueError(
            f"default dtype must be float16, float32 or float64, got {dtype!r}"
        )
    _CTX.default_dtype = resolved


def get_default_dtype() -> np.dtype:
    """Return the dtype used for newly created tensors (this thread's)."""
    return _CTX.default_dtype


class dtype_scope:
    """Context manager that temporarily switches the default compute dtype
    for the calling thread."""

    def __init__(self, dtype):
        self._dtype = dtype
        self._prev: np.dtype | None = None

    def __enter__(self) -> "dtype_scope":
        self._prev = _CTX.default_dtype
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc) -> None:
        set_default_dtype(self._prev)


class no_grad:
    """Context manager that disables graph construction.

    Mirrors ``torch.no_grad()``: inside the block, results of operations on
    tensors that require grad do not require grad themselves.  Ops take the
    graph-free fast path — no backward closures, no parent tracking, and
    arena-backed output buffers when one is active.  The flag is
    thread-local: a ``no_grad`` scope on one thread leaves gradient
    recording untouched on every other.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _CTX.grad_enabled
        _CTX.grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _CTX.grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Whether new operations record gradient information (this thread)."""
    return _CTX.grad_enabled


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Summing over axes that were broadcast is the adjoint of the broadcast
    itself; this is what makes ``a + b`` differentiable for mismatched
    shapes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes numpy prepended during broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
        if grad.shape == shape:  # fast path: only leading axes were broadcast
            return grad
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad if grad.shape == shape else grad.reshape(shape)


def _index_may_repeat(index) -> bool:
    """Whether an index could select the same element twice.

    Only integer-sequence (fancy) indices can alias; slices, scalars,
    ellipsis, ``None`` and boolean masks cannot, so their gradient can be
    written with direct slice assignment instead of ``np.add.at``.  Any
    sequence item (list, ndarray, tuple, range, ...) inside a tuple index
    is treated as fancy — numpy interprets all of them as integer arrays.
    """
    items = index if isinstance(index, tuple) else (index,)
    for item in items:
        if isinstance(item, np.ndarray):
            if item.dtype.kind != "b":
                return True
        elif not isinstance(item, (int, np.integer, slice, type(None), type(Ellipsis))):
            # list/tuple/range/other array-likes: conservatively scatter.
            return True
    return False


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("pass Tensor.data, not Tensor, to _as_array")
    coerce = getattr(value, "__repro_coerce__", None)
    if coerce is not None:
        # Abstract value (static shape checking): it applies these same
        # dtype-normalisation rules symbolically instead of materialising.
        return coerce(dtype, _CTX.default_dtype)
    arr = np.asarray(value, dtype=dtype)
    default = _CTX.default_dtype
    if arr.dtype.kind in "iub":
        arr = arr.astype(default)
    elif arr.dtype.kind == "f" and default != np.float64 and arr.dtype != default:
        arr = arr.astype(default)
    return arr


def as_input(value, dtype=None):
    """``np.asarray`` for model entry points.

    Behaves exactly like ``np.asarray(value, dtype=dtype)`` for concrete
    inputs.  Under the abstract shape interpreter
    (``repro.devtools.check``) the input is a symbolic stand-in that
    ``np.asarray`` would reject; this keeps it abstract while applying
    the same dtype semantics.  Model ``forward``/``forward_batch``
    implementations should coerce their window argument through this
    instead of calling ``np.asarray`` directly.
    """
    if getattr(value, "__repro_abstract__", False):
        if dtype is None or np.dtype(dtype) == value.dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


# ---------------------------------------------------------------------------
# No-grad fast-path allocation helpers
# ---------------------------------------------------------------------------
# Each returns an arena buffer for the op's output, or None — which is what
# ufunc ``out=`` expects when numpy should allocate fresh.  Arena buffers
# are only requested for exact-shape, same-dtype results *whose inputs are
# C-contiguous*: ufuncs with ``out=None`` allocate in the input's memory
# order (K-order), and downstream reductions round differently on
# different layouts — so a C-ordered buffer is only layout-identical (and
# therefore bitwise-identical end to end) to the graph path's fresh
# allocation when that allocation would have been C-ordered too.
# Anything else (broadcasting, dtype promotion, transposed views) falls
# back to a fresh allocation, i.e. the exact call the graph path makes.


def _unary_out(x: np.ndarray) -> np.ndarray | None:
    arena = _CTX.arena
    if arena is None or not x.flags.c_contiguous:
        return None
    return arena.take(x.shape, x.dtype)


def _binary_out(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    arena = _CTX.arena
    if arena is None or a.dtype != b.dtype:
        return None
    if b.ndim == 0:
        return arena.take(a.shape, a.dtype) if a.flags.c_contiguous else None
    if a.ndim == 0:
        return arena.take(b.shape, b.dtype) if b.flags.c_contiguous else None
    if a.shape == b.shape and a.flags.c_contiguous and b.flags.c_contiguous:
        return arena.take(a.shape, a.dtype)
    return None  # broadcast / mixed layouts: let numpy shape it


def _matmul_out(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    arena = _CTX.arena
    if arena is None or a.dtype != b.dtype or a.ndim < 2 or b.ndim < 2:
        return None
    batch = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    return arena.take(batch + (a.shape[-2], b.shape[-1]), a.dtype)


class Tensor:
    """A numpy-backed array node in a dynamic autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _CTX.grad_enabled
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _from_array(data) -> "Tensor":
        """Slim constructor for op results: no grad, no graph, no re-coerce.

        Every no-grad fast path funnels through here.  ``data`` is the raw
        result of a numpy op on existing tensor data, so the expensive
        ``np.asarray`` round-trip of ``__init__`` is skipped; the dtype
        normalisation of :func:`_as_array` is preserved (integer results
        promote, floats recast only under a non-float64 default).
        """
        if not isinstance(data, np.ndarray):
            if not getattr(data, "__repro_abstract__", False):
                data = np.asarray(data)
            # Abstract values expose .dtype/.astype and flow through the
            # same normalisation below without materialising.
        default = _CTX.default_dtype
        if data.dtype is not default:
            kind = data.dtype.kind
            if kind in "iub":
                data = data.astype(default)
            elif kind == "f" and default is not _FLOAT64 and data.dtype != default:
                data = data.astype(default)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out.name = ""
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[["Tensor"], None] | None,
    ) -> "Tensor":
        """Create an op output wired to ``parents`` via ``backward``.

        ``backward`` receives the output tensor and must accumulate into
        each parent's ``grad``.
        """
        requires = _CTX.grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor._from_array(data)
        if requires:
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward and (lambda out=out: backward(out))
        return out

    @staticmethod
    def _accum(parent: "Tensor", grad: np.ndarray, own: bool = False) -> None:
        """Accumulate ``grad`` into ``parent.grad`` respecting broadcasting.

        ``own=True`` asserts the caller hands over a freshly allocated array
        that no other graph node aliases, letting the first accumulation
        adopt it without a defensive copy — the dominant case on the conv
        and matmul hot paths.  Reductions performed by :func:`unbroadcast`
        always produce fresh arrays, so they are adopted too.
        """
        if not parent.requires_grad:
            return
        reduced = unbroadcast(grad, parent.data.shape)
        if parent.grad is None:
            if own or reduced is not grad:
                # np.broadcast_to views are read-only and must not be adopted.
                parent.grad = reduced if reduced.flags.writeable else reduced.copy()
            else:
                parent.grad = reduced.copy()
        else:
            parent.grad += reduced

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones (so a scalar loss needs no argument).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=self.data.dtype).reshape(self.data.shape).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            backward_fn = node._backward
            if backward_fn is not None and node.grad is not None:
                backward_fn()
            # Free graph references as we go so large graphs do not leak.
            node._backward = None
            node._parents = ()
            # An op output's gradient is dead once it has been pushed to its
            # parents; dropping it frees the buffer immediately and lets
            # closures transfer it to a parent without a defensive copy
            # (the ``own=True`` fast path in :meth:`_accum`).  Leaves keep
            # their gradients for the optimiser; the root keeps a snapshot
            # copy so a parent that adopted its buffer cannot mutate the
            # value the caller reads (the root is typically a scalar loss,
            # so the copy is free).
            if backward_fn is not None:
                node.grad = node.grad.copy() if node is self and node.grad is not None else None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _coerce_like(self, value) -> "Tensor":
        """Coerce ``value`` to a Tensor, matching this tensor's float dtype
        for scalar operands so float32 graphs are not upcast by python
        constants (which numpy would otherwise promote to float64)."""
        if isinstance(value, Tensor):
            return value
        arr = np.asarray(value)
        if arr.ndim == 0 and self.data.dtype.kind == "f" and arr.dtype != self.data.dtype:
            arr = arr.astype(self.data.dtype)
        return Tensor(arr)

    def __add__(self, other) -> "Tensor":
        other = self._coerce_like(other)
        if not _CTX.grad_enabled:
            a, b = self.data, other.data
            return Tensor._from_array(np.add(a, b, out=_binary_out(a, b)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad)
            # out.grad is dead after this closure (backward() frees it), so
            # exactly one parent may adopt the buffer instead of copying.
            # Safe when self is other too: the first accumulation above has
            # then already populated the grad, so this one takes the
            # ``+=`` branch rather than adopting.
            Tensor._accum(other, out.grad, own=True)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce_like(other)
        if not _CTX.grad_enabled:
            a, b = self.data, other.data
            return Tensor._from_array(np.subtract(a, b, out=_binary_out(a, b)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad)
            Tensor._accum(other, -out.grad, own=True)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce_like(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce_like(other)
        if not _CTX.grad_enabled:
            a, b = self.data, other.data
            return Tensor._from_array(np.multiply(a, b, out=_binary_out(a, b)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * other.data, own=True)
            Tensor._accum(other, out.grad * self.data, own=True)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce_like(other)
        if not _CTX.grad_enabled:
            a, b = self.data, other.data
            return Tensor._from_array(np.divide(a, b, out=_binary_out(a, b)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad / other.data, own=True)
            Tensor._accum(other, -out.grad * self.data / (other.data ** 2), own=True)

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce_like(other) / self

    def __neg__(self) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.negative(self.data, out=_unary_out(self.data)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, -out.grad, own=True)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        if not _CTX.grad_enabled:
            return Tensor._from_array(self.data ** exponent)

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * exponent * self.data ** (exponent - 1), own=True)

        return Tensor._make(self.data ** exponent, (self,), backward)

    # Comparison operators return plain boolean arrays (non-differentiable).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.exp(self.data, out=_unary_out(self.data)))
        result = np.exp(self.data)

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * result, own=True)

        return Tensor._make(result, (self,), backward)

    def log(self) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.log(self.data, out=_unary_out(self.data)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad / self.data, own=True)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.sqrt(self.data, out=_unary_out(self.data)))
        result = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad / (2.0 * result), own=True)

        return Tensor._make(result, (self,), backward)

    def abs(self) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.abs(self.data, out=_unary_out(self.data)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * np.sign(self.data), own=True)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.tanh(self.data, out=_unary_out(self.data)))
        result = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * (1.0 - result ** 2), own=True)

        return Tensor._make(result, (self,), backward)

    def sigmoid(self) -> "Tensor":
        if not _CTX.grad_enabled:
            # Same IEEE op sequence as the graph path, chained in one
            # (arena-reusable) buffer: clip -> negate -> exp -> +1 -> 1/x.
            r = np.clip(self.data, -60.0, 60.0, out=_unary_out(self.data))
            np.negative(r, out=r)
            np.exp(r, out=r)
            r += 1.0
            np.divide(1.0, r, out=r)
            return Tensor._from_array(r)
        result = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * result * (1.0 - result), own=True)

        return Tensor._make(result, (self,), backward)

    def relu(self) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.maximum(self.data, 0.0, out=_unary_out(self.data)))
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * mask, own=True)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """LeakyReLU, the activation used throughout ST-HSL (paper σ(·))."""
        if not _CTX.grad_enabled and 0.0 < negative_slope <= 1.0:
            # max(x, slope*x) == x*where(x>0, 1, slope) for slope in (0, 1],
            # multiply-by-1.0 being exact — one temp instead of two.  Slope
            # 0 is excluded: 0*inf = NaN would poison the maximum, where
            # the graph path's where() keeps the positive branch at x.
            x = self.data
            r = np.multiply(x, x.dtype.type(negative_slope), out=_unary_out(x))
            np.maximum(r, x, out=r)
            return Tensor._from_array(r)
        one = self.data.dtype.type(1.0)  # keep float32 graphs in float32
        factor = np.where(self.data > 0, one, self.data.dtype.type(negative_slope))
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.multiply(self.data, factor, out=factor))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * factor, own=True)

        return Tensor._make(self.data * factor, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.clip(self.data, low, high, out=_unary_out(self.data)))
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad * mask, own=True)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(self.data.sum(axis=axis, keepdims=keepdims))

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            Tensor._accum(self, np.broadcast_to(grad, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(self.data.mean(axis=axis, keepdims=keepdims))
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            # The division materialises a fresh array from the view.
            Tensor._accum(self, np.broadcast_to(grad, self.data.shape) / count, own=True)

        return Tensor._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        result = self.data.max(axis=axis, keepdims=keepdims)
        if not _CTX.grad_enabled:
            return Tensor._from_array(result)
        # Shape of the result with reduced axes kept as size-1: broadcasts
        # against self.data for every axis/keepdims combination, including
        # axis=None on multi-dim inputs where all axes are reduced.
        if keepdims:
            kept_shape = result.shape
        elif axis is None:
            kept_shape = (1,) * self.data.ndim
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = {a % self.data.ndim for a in axes}
            kept_shape = tuple(1 if i in axes else s for i, s in enumerate(self.data.shape))

        def backward(out: Tensor) -> None:
            grad = out.grad.reshape(kept_shape)
            mask = (self.data == result.reshape(kept_shape)).astype(self.data.dtype)
            # Split gradient evenly among ties, matching subgradient choice.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            Tensor._accum(self, mask * grad, own=True)

        return Tensor._make(result, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        if not _CTX.grad_enabled:
            return Tensor._from_array(self.data.reshape(shape))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad.reshape(self.data.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes = axes or None
        if not _CTX.grad_enabled:
            return Tensor._from_array(self.data.transpose(axes) if axes else self.data.T)

        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad.transpose(inverse) if inverse else out.grad.transpose())

        return Tensor._make(self.data.transpose(axes) if axes else self.data.T, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def expand_dims(self, axis: int) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.expand_dims(self.data, axis))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, np.squeeze(out.grad, axis=axis))

        return Tensor._make(np.expand_dims(self.data, axis), (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.squeeze(self.data, axis=axis))

        def backward(out: Tensor) -> None:
            Tensor._accum(self, np.expand_dims(out.grad, axis=axis))

        return Tensor._make(np.squeeze(self.data, axis=axis), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        if not _CTX.grad_enabled:
            return Tensor._from_array(self.data[index])

        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = np.zeros_like(self.data)
            if _index_may_repeat(index):
                np.add.at(grad, index, out.grad)
            else:
                # Basic and boolean indexing select each element at most
                # once, so direct assignment replaces the (much slower)
                # np.add.at scatter.
                grad[index] = out.grad
            Tensor._accum(self, grad, own=True)

        return Tensor._make(self.data[index], (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad with numpy-style ``pad_width`` (list of (before, after))."""
        if not _CTX.grad_enabled:
            return Tensor._from_array(_padded(self.data, pad_width))
        slices = tuple(
            slice(before, before + dim) for (before, _after), dim in zip(pad_width, self.data.shape)
        )

        def backward(out: Tensor) -> None:
            Tensor._accum(self, out.grad[slices])

        return Tensor._make(np.pad(self.data, pad_width), (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = self._coerce_like(other)
        a, b = self.data, other.data
        if not _CTX.grad_enabled:
            return Tensor._from_array(np.matmul(a, b, out=_matmul_out(a, b)))

        def backward(out: Tensor) -> None:
            grad = out.grad
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.expand_dims(grad, -1) * b if a.ndim > 1 else np.outer(grad, b)
                    if a.ndim == 1:
                        ga = grad * b
                else:
                    gb_t = np.swapaxes(b, -1, -2)
                    ga = (np.expand_dims(grad, -2) if a.ndim == 1 else grad) @ gb_t
                    if a.ndim == 1:
                        ga = ga.reshape(a.shape[-1:]) if ga.ndim == 1 else ga[..., 0, :]
                Tensor._accum(self, ga, own=True)
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.outer(a, grad) if b.ndim == 2 else a * grad
                elif b.ndim == 1:
                    gb = np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1)
                    gb = gb[..., 0]
                    if gb.ndim > 1:
                        gb = gb.sum(axis=tuple(range(gb.ndim - 1)))
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                Tensor._accum(other, gb, own=True)

        return Tensor._make(a @ b, (self, other), backward)

    def dot(self, other) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------
    # Factory helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()  # repro: ignore[no-nondeterminism-in-hot-path] -- documented convenience default; reproducible paths pass a seeded Generator
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def _padded(data: np.ndarray, pad_width) -> np.ndarray:
    """Zero-pad into an arena buffer when one is active, else ``np.pad``.

    Written as full-fill + interior copy; identical values to ``np.pad``
    (zeros are exact) but the workspace is reusable across calls.  Only
    for C-contiguous inputs — ``np.pad`` preserves the input's memory
    order, and layout must match the graph path exactly (see the arena
    helper notes above).
    """
    arena = _CTX.arena
    if arena is None or not data.flags.c_contiguous:
        return np.pad(data, pad_width)
    out_shape = tuple(dim + before + after for (before, after), dim in zip(pad_width, data.shape))
    buffer = arena.take(out_shape, data.dtype)
    buffer.fill(0)
    interior = tuple(slice(before, before + dim) for (before, _), dim in zip(pad_width, data.shape))
    buffer[interior] = data
    return buffer


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate`` over a sequence of tensors."""
    tensors = list(tensors)
    datas = [t.data for t in tensors]
    if not _CTX.grad_enabled:
        return Tensor._from_array(np.concatenate(datas, axis=axis))
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, stop)
            Tensor._accum(tensor, out.grad[tuple(index)])

    return Tensor._make(np.concatenate(datas, axis=axis), tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = list(tensors)
    if not _CTX.grad_enabled:
        return Tensor._from_array(np.stack([t.data for t in tensors], axis=axis))

    def backward(out: Tensor) -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            Tensor._accum(tensor, np.squeeze(grad, axis=axis))

    return Tensor._make(np.stack([t.data for t in tensors], axis=axis), tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``np.where`` with a constant boolean condition."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    condition = np.asarray(condition)
    if not _CTX.grad_enabled:
        return Tensor._from_array(np.where(condition, a.data, b.data))

    def backward(out: Tensor) -> None:
        Tensor._accum(a, out.grad * condition, own=True)
        Tensor._accum(b, out.grad * (~condition), own=True)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)
