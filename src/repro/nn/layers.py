"""Standard neural network layers built on the autograd substrate.

Every layer takes an explicit ``numpy.random.Generator`` for weight
initialisation, so model construction is a pure function of the seed.
"""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .ops import conv1d, conv2d
from .tensor import Tensor, concatenate

__all__ = [
    "Linear",
    "BatchNorm2d",
    "Conv2d",
    "Conv1d",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "GRUCell",
    "GRU",
    "LSTMCell",
    "MultiHeadAttention",
    "ReLU",
    "LeakyReLU",
    "Tanh",
]


class Linear(Module):
    """Affine map ``y = x W^T + b`` applied to the trailing dimension."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), rng, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution over ``(N, C_in, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        rng: np.random.Generator,
        stride=1,
        padding=0,
        bias: bool = True,
    ):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(init.kaiming_uniform((out_channels, in_channels, kh, kw), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_channels * kh * kw)
            self.bias = Parameter(init.uniform((out_channels,), rng, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class Conv1d(Module):
    """1-D convolution over ``(N, C_in, L)`` inputs, with dilation support."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        bias: bool = True,
    ):
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.weight = Parameter(init.kaiming_uniform((out_channels, in_channels, kernel_size), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_channels * kernel_size)
            self.bias = Parameter(init.uniform((out_channels,), rng, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding, dilation=self.dilation
        )


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.1))

    def forward(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.intp)
        return self.weight[ids]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self._rng)


class BatchNorm2d(Module):
    """Batch normalisation over ``(N, C, H, W)`` images.

    Used by the ST-ResNet baseline's residual units, as in the original
    architecture.  Running statistics are tracked for eval mode.
    """

    def __init__(self, num_channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_channels))
        self.beta = Parameter(np.zeros(num_channels))
        self.running_mean = np.zeros(num_channels)
        self.running_var = np.ones(num_channels)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
            # Centre/scale with batch stats as constants w.r.t. the graph
            # except through gamma/beta (sufficient for small-batch
            # training; full BN backprop through the stats is unnecessary
            # at batch size 1 where stats are per-image).
            mean_t = Tensor(mean.reshape(1, -1, 1, 1))
            var_t = Tensor(var.reshape(1, -1, 1, 1))
        else:
            mean_t = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var_t = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normed = (x - mean_t) / (var_t + self.eps).sqrt()
        return normed * self.gamma.reshape(1, -1, 1, 1) + self.beta.reshape(1, -1, 1, 1)


class LayerNorm(Module):
    """Layer normalisation over the trailing dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape))
        self.beta = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class GRUCell(Module):
    """Single-step gated recurrent unit (used by DeepCrime, AGCRN, DCRNN)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.kaiming_uniform((3 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.kaiming_uniform((3 * hidden_size, hidden_size), rng))
        bound = 1.0 / math.sqrt(hidden_size)
        self.b_ih = Parameter(init.uniform((3 * hidden_size,), rng, bound))
        self.b_hh = Parameter(init.uniform((3 * hidden_size,), rng, bound))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gi = x @ self.w_ih.T + self.b_ih
        gh = h @ self.w_hh.T + self.b_hh
        hs = self.hidden_size
        r = (gi[:, :hs] + gh[:, :hs]).sigmoid()
        z = (gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]).sigmoid()
        n = (gi[:, 2 * hs :] + r * gh[:, 2 * hs :]).tanh()
        return n + z * (h - n)


class GRU(Module):
    """Unrolled GRU over a ``(N, T, D)`` sequence; returns all hidden states."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, h0: Tensor | None = None) -> tuple[Tensor, Tensor]:
        n, t, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((n, self.hidden_size)))
        outputs = []
        for step in range(t):
            h = self.cell(x[:, step, :], h)
            outputs.append(h.expand_dims(1))
        return concatenate(outputs, axis=1), h


class LSTMCell(Module):
    """Single-step LSTM (used by the D-LSTM-style temporal encoders)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.kaiming_uniform((4 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.kaiming_uniform((4 * hidden_size, hidden_size), rng))
        bound = 1.0 / math.sqrt(hidden_size)
        self.b = Parameter(init.uniform((4 * hidden_size,), rng, bound))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = x @ self.w_ih.T + h @ self.w_hh.T + self.b
        hs = self.hidden_size
        i = gates[:, :hs].sigmoid()
        f = gates[:, hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs :].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention (STtrans, GMAN, STDN)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    def _split(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        return x.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor | None = None, value: Tensor | None = None) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        q = self._split(self.q_proj(query))
        k = self._split(self.k_proj(key))
        v = self._split(self.v_proj(value))
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        attn = F.softmax(scores, axis=-1)
        mixed = attn @ v  # (N, heads, Tq, head_dim)
        n, _, tq, _ = mixed.shape
        merged = mixed.transpose(0, 2, 1, 3).reshape(n, tq, self.num_heads * self.head_dim)
        return self.out_proj(merged)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
