"""Buffer-reuse arena for graph-free inference.

The autograd hot path allocates a fresh numpy array for every op output.
During training those buffers must survive until the backward pass, but
under :class:`~repro.nn.tensor.no_grad` each intermediate dies as soon as
its consumer has read it — so inference can recycle a small pool of
preallocated buffers instead of paying allocator traffic (and, for
multi-megabyte conv workspaces, kernel page faults) on every call.

Usage::

    arena = BufferArena()
    with no_grad(), use_arena(arena):
        prediction = model.forward(window).data.copy()  # copy before exit!

Inside the scope, the no-grad fast paths in :mod:`repro.nn.tensor` and
:mod:`repro.nn.ops` allocate op outputs via :meth:`BufferArena.take`.
Buffers are keyed by ``(shape, dtype)`` and stay *in use* until the scope
exits, so two same-shaped tensors alive in one forward pass never alias.
On exit every buffer returns to the free pool; re-entering the scope (the
next ``predict`` call) reuses them.  Steady-state memory is therefore
bounded by one call's peak working set per distinct shape.

Two contracts follow from the recycling:

* anything that must survive the scope (the returned prediction) must be
  copied out before the scope exits — the model ``predict`` helpers do;
* like ``no_grad`` itself, the active-arena state is process-global and
  not thread-safe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferArena", "use_arena", "active_arena"]


class BufferArena:
    """A ``(shape, dtype)``-keyed pool of reusable numpy buffers."""

    __slots__ = ("_free", "_in_use", "hits", "misses")

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._in_use: list[np.ndarray] = []
        self.hits = 0
        self.misses = 0

    def take(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Hand out an uninitialised buffer; it stays unavailable for reuse
        until :meth:`release_all` (normally the end of the ``use_arena``
        scope that allocated it)."""
        key = (shape, dtype)
        pool = self._free.get(key)
        if pool:
            buffer = pool.pop()
            self.hits += 1
        else:
            buffer = np.empty(shape, dtype)
            self.misses += 1
        self._in_use.append(buffer)
        return buffer

    def release_all(self) -> None:
        """Return every outstanding buffer to the free pools."""
        for buffer in self._in_use:
            self._free.setdefault((buffer.shape, buffer.dtype), []).append(buffer)
        self._in_use.clear()

    def clear(self) -> None:
        """Drop all pooled buffers (frees the memory)."""
        self._free.clear()
        self._in_use.clear()

    @property
    def num_buffers(self) -> int:
        return len(self._in_use) + sum(len(pool) for pool in self._free.values())

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (in use + free pools)."""
        total = sum(buffer.nbytes for buffer in self._in_use)
        return total + sum(b.nbytes for pool in self._free.values() for b in pool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferArena(buffers={self.num_buffers}, bytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: The arena no-grad fast paths allocate from, or None (fresh allocations).
_ACTIVE: BufferArena | None = None


def active_arena() -> BufferArena | None:
    """The arena currently supplying no-grad op outputs, if any."""
    return _ACTIVE


def request(shape: tuple[int, ...], dtype) -> np.ndarray | None:
    """Arena buffer for an op output, or None to let numpy allocate.

    ``None`` is exactly what ufunc ``out=`` expects when no arena is
    active, so call sites can pass the result straight through.
    """
    arena = _ACTIVE
    return arena.take(shape, dtype) if arena is not None else None


class use_arena:
    """Context manager activating ``arena`` for no-grad op outputs.

    On exit the previous arena (usually None) is restored and every
    buffer handed out inside the scope returns to the free pool.
    Re-entering with the *same* arena nests safely: the inner scope
    leaves release to the outermost owner.
    """

    def __init__(self, arena: BufferArena):
        self._arena = arena
        self._prev: BufferArena | None = None

    def __enter__(self) -> BufferArena:
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self._arena
        return self._arena

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._prev
        if self._arena is not None and self._prev is not self._arena:
            self._arena.release_all()
