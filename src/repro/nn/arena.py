"""Buffer-reuse arena for graph-free inference.

The autograd hot path allocates a fresh numpy array for every op output.
During training those buffers must survive until the backward pass, but
under :class:`~repro.nn.tensor.no_grad` each intermediate dies as soon as
its consumer has read it — so inference can recycle a small pool of
preallocated buffers instead of paying allocator traffic (and, for
multi-megabyte conv workspaces, kernel page faults) on every call.

Usage::

    arena = BufferArena()
    with no_grad(), use_arena(arena):
        prediction = model.forward(window).data.copy()  # copy before exit!

Inside the scope, the no-grad fast paths in :mod:`repro.nn.tensor` and
:mod:`repro.nn.ops` allocate op outputs via :meth:`BufferArena.take`.
Buffers are keyed by ``(shape, dtype)`` and stay *in use* until the scope
exits, so two same-shaped tensors alive in one forward pass never alias.
On exit every buffer returns to the free pool; re-entering the scope (the
next ``predict`` call) reuses them.  Steady-state memory is therefore
bounded by one call's peak working set per distinct shape.

Two contracts follow from the recycling:

* anything that must survive the scope (the returned prediction) must be
  copied out before the scope exits — the model ``predict`` helpers do;
* the *active-arena* state is thread-local (it lives in the
  :class:`~repro.nn.context.ExecutionContext`), so every thread scopes
  its own arena independently — but a single :class:`BufferArena`
  instance is not itself thread-safe: never activate one arena on two
  threads at once (give each thread its own, the way
  :meth:`repro.nn.Module._inference_arena` does).
"""

from __future__ import annotations

import numpy as np

from .context import _CONTEXT as _CTX

__all__ = ["BufferArena", "use_arena", "active_arena", "request"]


class BufferArena:
    """A ``(shape, dtype)``-keyed pool of reusable numpy buffers."""

    __slots__ = ("_free", "_in_use", "_active", "hits", "misses")

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._in_use: list[np.ndarray] = []
        self._active = 0  # live use_arena scopes (outermost per thread)
        self.hits = 0
        self.misses = 0

    @property
    def in_active_scope(self) -> bool:
        """Whether some thread currently has this arena activated.

        Consolidation and handoff (:meth:`absorb`,
        :meth:`repro.nn.Module.release_arena`) skip active arenas — an
        arena inside a live ``use_arena`` scope is being written to and
        must not change hands.
        """
        return self._active > 0

    def take(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Hand out an uninitialised buffer; it stays unavailable for reuse
        until :meth:`release_all` (normally the end of the ``use_arena``
        scope that allocated it)."""
        # Normalise the key through np.dtype: callers pass scalar types
        # (np.float32), strings and dtype instances interchangeably, and
        # release_all re-keys by buffer.dtype — without normalisation a
        # scalar-type key never re-hits its own released buffers and the
        # free pool grows without bound.
        key = (shape, np.dtype(dtype))
        pool = self._free.get(key)
        if pool:
            buffer = pool.pop()
            self.hits += 1
        else:
            buffer = np.empty(shape, key[1])
            self.misses += 1
        self._in_use.append(buffer)
        return buffer

    def release_all(self) -> None:
        """Return every outstanding buffer to the free pools."""
        for buffer in self._in_use:
            self._free.setdefault((buffer.shape, buffer.dtype), []).append(buffer)
        self._in_use.clear()

    def absorb(self, other: "BufferArena") -> "BufferArena":
        """Move every buffer pooled in ``other`` into this arena's free
        pools (emptying ``other``), and fold in its hit/miss counters.

        Used when per-thread arenas are consolidated for handoff (see
        :meth:`repro.nn.Module.release_arena`): the merged arena carries
        the union of warm buffers, so whichever thread adopts it re-hits
        every shape any of the source threads had warmed.  Returns
        ``self``.  Raises ``ValueError`` if ``other`` is inside a live
        ``use_arena`` scope — its buffers are mid-write on another
        thread and absorbing them would alias live data.
        """
        if other is self:
            return self
        if other.in_active_scope:
            raise ValueError("cannot absorb an arena that is active in a use_arena scope")
        other.release_all()
        for key, pool in other._free.items():
            self._free.setdefault(key, []).extend(pool)
        other._free.clear()
        self.hits += other.hits
        self.misses += other.misses
        other.hits = other.misses = 0
        return self

    def clear(self) -> None:
        """Drop all pooled buffers (frees the memory)."""
        self._free.clear()
        self._in_use.clear()

    @property
    def num_buffers(self) -> int:
        return len(self._in_use) + sum(len(pool) for pool in self._free.values())

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (in use + free pools)."""
        total = sum(buffer.nbytes for buffer in self._in_use)
        return total + sum(b.nbytes for pool in self._free.values() for b in pool)

    def stats(self) -> dict:
        """A snapshot of the arena's holdings and traffic.

        Returns ``{"buffers", "nbytes", "hits", "misses",
        "bytes_by_dtype"}`` where ``bytes_by_dtype`` maps dtype name to
        the bytes held in that dtype (in-use + free).  This is what the
        kernel tests use to compare peak workspace footprints across
        conv strategies (tap-gemm must hold strictly fewer bytes than
        im2col)::

            with no_grad(), use_arena(arena):
                model.predict(window)
            print(arena.stats()["bytes_by_dtype"])
        """
        by_dtype: dict[str, int] = {}
        for buffer in self._in_use:
            name = buffer.dtype.name
            by_dtype[name] = by_dtype.get(name, 0) + buffer.nbytes
        for pool in self._free.values():
            for buffer in pool:
                name = buffer.dtype.name
                by_dtype[name] = by_dtype.get(name, 0) + buffer.nbytes
        return {
            "buffers": self.num_buffers,
            "nbytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "bytes_by_dtype": by_dtype,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferArena(buffers={self.num_buffers}, bytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def active_arena() -> BufferArena | None:
    """The arena currently supplying no-grad op outputs on the calling
    thread, if any."""
    return _CTX.arena


def request(shape: tuple[int, ...], dtype) -> np.ndarray | None:
    """Arena buffer for an op output, or None to let numpy allocate.

    ``None`` is exactly what ufunc ``out=`` expects when no arena is
    active, so call sites can pass the result straight through.
    """
    arena = _CTX.arena
    return arena.take(shape, dtype) if arena is not None else None


class use_arena:
    """Context manager activating ``arena`` for no-grad op outputs on the
    calling thread.

    On exit the thread's previous arena (usually None) is restored and
    every buffer handed out inside the scope returns to the free pool.
    Re-entering with the *same* arena nests safely: the inner scope
    leaves release to the outermost owner.  The active-arena slot is
    thread-local, so concurrent ``use_arena`` scopes on different
    threads — each with its own arena — never see each other.
    """

    def __init__(self, arena: BufferArena):
        self._arena = arena
        self._prev: BufferArena | None = None

    def __enter__(self) -> BufferArena:
        self._prev = _CTX.arena
        _CTX.arena = self._arena
        if self._arena is not None and self._prev is not self._arena:
            # Outermost scope marks the arena active so consolidation /
            # handoff (Module.release_arena, dead-thread harvesting)
            # never steals an arena that is mid-forward on some thread.
            self._arena._active += 1
        return self._arena

    def __exit__(self, *exc) -> None:
        _CTX.arena = self._prev
        if self._arena is not None and self._prev is not self._arena:
            self._arena.release_all()
            self._arena._active -= 1
