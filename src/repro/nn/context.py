"""Thread-local execution state for the ``repro.nn`` substrate.

Three pieces of ambient state steer every op in :mod:`repro.nn.tensor`
and :mod:`repro.nn.ops`: whether gradients are being recorded
(:class:`~repro.nn.tensor.no_grad`), which
:class:`~repro.nn.arena.BufferArena` supplies no-grad op outputs
(:class:`~repro.nn.arena.use_arena`), and the default dtype new tensors
are created with (:class:`~repro.nn.tensor.dtype_scope`).  Historically
all three were process-global module variables, which made concurrent
inference from two threads silently corrupting — one thread's
``no_grad`` scope turned another thread's training forward graph-free,
and two predicts sharing one arena aliased each other's recycled
buffers.

:class:`ExecutionContext` fixes the whole class of races by backing the
state with ``threading.local``: every thread that touches ``repro.nn``
sees its own independent copy, initialised to the defaults (grad on, no
arena, float64).  The context managers above mutate only the calling
thread's copy, so ``no_grad``/``use_arena``/``dtype_scope`` scopes on
one thread are invisible to every other — the same per-thread grad-mode
discipline torch's autograd uses.

The serving layer builds directly on this: ``ForecastService`` worker
threads and ``ShardRouter`` fan-out threads each predict under their own
context (and their own per-thread model arena, see
:meth:`repro.nn.Module._inference_arena`), which is what makes
concurrent ``predict`` bitwise-equal to the sequential answers.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ExecutionContext", "execution_context"]

_FLOAT64 = np.dtype(np.float64)


class ExecutionContext(threading.local):
    """Per-thread ``repro.nn`` execution state.

    One process-wide instance exists (:func:`execution_context` returns
    it), but because the class subclasses ``threading.local`` every
    thread reading an attribute sees its own copy, lazily initialised to
    the defaults the first time the thread touches it.  Fields:

    * ``grad_enabled`` — whether ops record the autograd graph
      (toggled by :class:`~repro.nn.tensor.no_grad`);
    * ``arena`` — the :class:`~repro.nn.arena.BufferArena` supplying
      no-grad op outputs, or ``None`` for fresh allocations (toggled by
      :class:`~repro.nn.arena.use_arena`);
    * ``default_dtype`` — the dtype new tensors are created with
      (toggled by :func:`~repro.nn.tensor.set_default_dtype` /
      :class:`~repro.nn.tensor.dtype_scope`);
    * ``conv_strategy`` — which convolution execution kernel
      :mod:`repro.nn.ops` dispatches to (``"auto"`` selects per
      dtype/geometry through the heuristic table; toggled by
      :class:`~repro.nn.kernels.conv_strategy`);
    * ``conv_rules`` — an override for the kernel auto-selection table,
      or ``None`` for :data:`repro.nn.kernels.DEFAULT_AUTO_RULES`.

    Read it for introspection; mutate it through the public context
    managers rather than directly so scopes nest and restore correctly::

        from repro.nn import execution_context

        ctx = execution_context()
        assert ctx.grad_enabled and ctx.arena is None
    """

    def __init__(self) -> None:
        self.grad_enabled: bool = True
        self.arena = None  # BufferArena | None (untyped: avoids an import cycle)
        self.default_dtype: np.dtype = _FLOAT64
        self.conv_strategy: str = "auto"
        self.conv_rules = None  # tuple of rule rows | None (default table)


#: The process-wide context object; attribute access resolves per thread.
_CONTEXT = ExecutionContext()


def execution_context() -> ExecutionContext:
    """The calling thread's execution context.

    Always the same object, but its attributes resolve to thread-local
    storage — two threads reading ``execution_context().grad_enabled``
    see independent values.
    """
    return _CONTEXT
