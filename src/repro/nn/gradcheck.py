"""Finite-difference gradient checking for the autograd engine.

Used heavily by the test suite to validate every primitive op and layer
against central differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_grad", "gradcheck"]


def numeric_grad(
    fn: Callable[..., Tensor], inputs: Sequence[Tensor], index: int, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    rtol: float = 1e-4,
    atol: float = 1e-6,
    eps: float = 1e-6,
) -> bool:
    """Assert analytic gradients match finite differences for each input.

    Raises ``AssertionError`` with the offending index on mismatch.
    """
    out = fn(*inputs)
    out.sum().backward()
    analytic = [inp.grad.copy() if inp.grad is not None else np.zeros_like(inp.data) for inp in inputs]
    for inp in inputs:
        inp.grad = None
    for idx, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        numeric = numeric_grad(fn, inputs, idx, eps=eps)
        if not np.allclose(analytic[idx], numeric, rtol=rtol, atol=atol):
            worst = np.abs(analytic[idx] - numeric).max()
            raise AssertionError(f"gradcheck failed for input {idx}: max abs err {worst:.3e}")
    return True
