"""Weight quantization for sub-float32 serving.

Serving below float32 on this substrate is *storage* quantization, not
compute quantization: numpy (2.x, this container) has no SIMD half or
int8 arithmetic kernels — float16 ufuncs run 8–20x slower than float32
and there is no BLAS half gemm — so actually computing in float16 would
make predictions slower *and* less accurate.  Instead the loader rounds
every weight through the narrow format and hands the dequantized values
to a float32-compute model:

* ``float16`` — each value is cast to IEEE half (11-bit significand)
  and back, exactly the values a genuine f16 model would hold;
* ``int8`` — per-tensor symmetric affine quantization: 256 levels over
  ``[-max|w|, +max|w|]``, the standard post-training weight-quantization
  scheme (scale = ``max|w| / 127``, zero-point 0).

Both reproduce the accuracy of serving from a narrow-format checkpoint
(what the ``served_dtype="float16"`` artifact contract promises) while
keeping the fast float32 execution path; the perf harness's ``kernels``
section gates the resulting MAE delta.  Used by
:meth:`repro.api.Forecaster.load` and, transitively, every
:class:`~repro.serving.ModelPool` worker.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QUANTIZE_MODES", "quantize_state", "round_trip_float16", "round_trip_int8"]

#: Supported weight-quantization modes, in decreasing precision order.
QUANTIZE_MODES = ("float16", "int8")


def round_trip_float16(array: np.ndarray) -> np.ndarray:
    """Round ``array`` through IEEE float16, back in its original dtype.

    Values outside float16 range saturate to ±65504 (numpy's cast maps
    them to ±inf; they are clipped first so a single outlier weight does
    not poison the model with infinities)::

        w16 = round_trip_float16(weights)   # same dtype, 11-bit mantissa
    """
    finfo = np.finfo(np.float16)
    clipped = np.clip(array, finfo.min, finfo.max)
    return clipped.astype(np.float16).astype(array.dtype)


def round_trip_int8(array: np.ndarray) -> np.ndarray:
    """Per-tensor symmetric int8 round trip, back in the original dtype.

    ``scale = max|w| / 127`` (zero-point 0, so zero weights stay exactly
    zero); all-zero tensors pass through unchanged.  8 bits per weight is
    the aggressive end of post-training quantization — callers gate the
    accuracy delta (see ``measure_kernels``)::

        w8 = round_trip_int8(weights)       # at most 256 distinct values
    """
    scale = float(np.max(np.abs(array))) / 127.0
    if scale == 0.0:
        return array.copy()
    q = np.clip(np.rint(array / scale), -127, 127).astype(np.int8)
    return (q.astype(array.dtype)) * array.dtype.type(scale)


def quantize_state(state: dict[str, np.ndarray], mode: str) -> dict[str, np.ndarray]:
    """Round every float array in a state dict through ``mode``.

    Non-float entries (index buffers, masks) pass through untouched.
    Returns a new dict — the input state is never mutated::

        state16 = quantize_state(model.state_dict(), "float16")
        model.load_state_dict(state16)      # float32 model, f16 weights
    """
    if mode not in QUANTIZE_MODES:
        raise ValueError(f"unknown quantize mode {mode!r}; expected one of {QUANTIZE_MODES}")
    round_trip = round_trip_float16 if mode == "float16" else round_trip_int8
    out = {}
    for name, array in state.items():
        array = np.asarray(array)
        out[name] = round_trip(array) if np.issubdtype(array.dtype, np.floating) else array
    return out
