"""Crime sequence density degrees (paper Figure 1 and RQ3 grouping).

The *density degree* of a region is the fraction of days with at least
one crime occurrence; it quantifies label sparsity.  Figure 1 shows most
regions fall in (0, 0.25]; the robustness study (Figure 6) groups sparse
regions into (0, 0.25] and (0.25, 0.5].
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "density_degree",
    "density_degree_per_category",
    "density_histogram",
    "group_regions_by_density",
    "SPARSE_BINS",
]

# The two sparse-region groups analysed in the paper's robustness study.
SPARSE_BINS: tuple[tuple[float, float], ...] = ((0.0, 0.25), (0.25, 0.5))


def density_degree(tensor: np.ndarray) -> np.ndarray:
    """Per-region density over all categories: ``(R,)``.

    A day counts as non-zero when any category had an occurrence in the
    region.
    """
    any_crime = tensor.sum(axis=2) > 0  # (R, T)
    return any_crime.mean(axis=1)


def density_degree_per_category(tensor: np.ndarray) -> np.ndarray:
    """Per-(region, category) density of the sequence ``X_{r,c}``: ``(R, C)``."""
    return (tensor > 0).mean(axis=1)


def density_histogram(
    tensor: np.ndarray, bins: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
) -> dict[str, np.ndarray]:
    """Fraction of regions per density bucket, per category (Figure 1).

    Returns ``{"edges": ..., "counts": (num_bins, C)}`` where counts are
    normalised to fractions of regions.
    """
    density = density_degree_per_category(tensor)  # (R, C)
    num_bins = len(bins) - 1
    counts = np.zeros((num_bins, tensor.shape[2]))
    for c in range(tensor.shape[2]):
        hist, _ = np.histogram(density[:, c], bins=np.asarray(bins))
        counts[:, c] = hist / max(tensor.shape[0], 1)
    return {"edges": np.asarray(bins), "counts": counts}


def group_regions_by_density(
    tensor: np.ndarray, bins: tuple[tuple[float, float], ...] = SPARSE_BINS
) -> dict[tuple[float, float], np.ndarray]:
    """Region indices per half-open density interval ``(low, high]``.

    Mirrors the grouping of the robustness study: regions with density in
    ``(low, high]`` form one evaluation cohort.
    """
    density = density_degree(tensor)
    groups: dict[tuple[float, float], np.ndarray] = {}
    for low, high in bins:
        mask = (density > low) & (density <= high)
        groups[(low, high)] = np.flatnonzero(mask)
    return groups
