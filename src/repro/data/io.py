"""CSV persistence for crime event streams.

Records follow the paper's report schema
``<crime type, timestamp, longitude, latitude>``; one row per report.
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path
from typing import Iterable, Iterator

from .schema import CrimeEvent

__all__ = ["write_events_csv", "read_events_csv"]

_TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%S"
_FIELDS = ("category", "timestamp", "longitude", "latitude")


def write_events_csv(events: Iterable[CrimeEvent], path: str | Path) -> int:
    """Write events to ``path``; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for event in events:
            writer.writerow(
                (
                    event.category,
                    event.timestamp.strftime(_TIMESTAMP_FORMAT),
                    f"{event.longitude:.6f}",
                    f"{event.latitude:.6f}",
                )
            )
            count += 1
    return count


def read_events_csv(path: str | Path) -> Iterator[CrimeEvent]:
    """Stream events back from a CSV written by :func:`write_events_csv`."""
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"CSV at {path} missing columns: {sorted(missing)}")
        for row in reader:
            yield CrimeEvent(
                category=row["category"],
                timestamp=datetime.strptime(row["timestamp"], _TIMESTAMP_FORMAT),
                longitude=float(row["longitude"]),
                latitude=float(row["latitude"]),
            )
