"""Dataset assembly: city configs → ready-to-train ``CrimeDataset`` objects.

``load_city`` is the single entry point used by examples, tests and
benchmarks.  A full-scale dataset matches the paper's Table II; passing
``rows/cols/num_days`` yields the reduced-scale variants used by the
benchmark harness (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Iterable

from .density import density_degree
from .grid import GridSegmentation
from .schema import CHICAGO_CONFIG, NYC_CONFIG, CityConfig, CrimeEvent
from .splits import TemporalSplit, temporal_split
from .synthetic import SyntheticCrimeGenerator
from .tensorize import events_to_tensor, zscore_stats

__all__ = ["CrimeDataset", "load_city", "dataset_from_events", "CITY_CONFIGS"]

CITY_CONFIGS: dict[str, CityConfig] = {
    "nyc": NYC_CONFIG,
    "chicago": CHICAGO_CONFIG,
}


@dataclass(frozen=True)
class CrimeDataset:
    """A city's crime tensor plus everything needed to train and evaluate."""

    config: CityConfig
    grid: GridSegmentation
    tensor: np.ndarray  # X[R, T, C] daily counts
    split: TemporalSplit
    mu: float
    sigma: float

    @property
    def num_regions(self) -> int:
        return self.tensor.shape[0]

    @property
    def num_days(self) -> int:
        return self.tensor.shape[1]

    @property
    def num_categories(self) -> int:
        return self.tensor.shape[2]

    @property
    def categories(self) -> tuple[str, ...]:
        return self.config.categories

    def normalized(self) -> np.ndarray:
        """Z-scored tensor using *training-period* statistics (Eq 1)."""
        return (self.tensor - self.mu) / self.sigma

    def density(self) -> np.ndarray:
        """Per-region density degree over the full span."""
        return density_degree(self.tensor)

    def category_totals(self) -> dict[str, int]:
        """Observed total case counts per category (compare to Table II)."""
        totals = self.tensor.sum(axis=(0, 1))
        return {name: int(count) for name, count in zip(self.categories, totals)}


def load_city(
    city: str,
    seed: int = 0,
    rows: int | None = None,
    cols: int | None = None,
    num_days: int | None = None,
) -> CrimeDataset:
    """Build a (synthetic) dataset for ``city`` ("nyc" or "chicago").

    Omitting the size overrides gives the full Table II scale; any subset
    of ``rows/cols/num_days`` may be overridden for reduced-scale runs.
    Z-score statistics are computed on the training span only, to avoid
    test leakage.
    """
    key = city.lower()
    if key not in CITY_CONFIGS:
        raise KeyError(f"unknown city {city!r}; expected one of {sorted(CITY_CONFIGS)}")
    config = CITY_CONFIGS[key]
    if rows is not None or cols is not None or num_days is not None:
        config = config.scaled(
            rows=rows or config.rows,
            cols=cols or config.cols,
            num_days=num_days or config.num_days,
        )
    generator = SyntheticCrimeGenerator(config, seed=seed)
    tensor = generator.generate_tensor()
    return _assemble(config, generator.grid, tensor)


def dataset_from_events(events: Iterable[CrimeEvent], config: CityConfig) -> CrimeDataset:
    """Build a :class:`CrimeDataset` from raw crime reports.

    This is the path a user with *real* crime feeds takes: read reports
    with :func:`repro.data.read_events_csv`, describe the city with a
    :class:`CityConfig`, and get back the same dataset object the
    synthetic loaders produce — splits, z-score statistics and all.
    """
    grid = GridSegmentation(config.bbox, config.rows, config.cols)
    tensor = events_to_tensor(
        events, grid, config.start_date, config.num_days, config.categories
    )
    return _assemble(config, grid, tensor)


def _assemble(config: CityConfig, grid: GridSegmentation, tensor) -> CrimeDataset:
    split = temporal_split(config.num_days)
    mu, sigma = zscore_stats(split.slice_train(tensor))
    return CrimeDataset(
        config=config,
        grid=grid,
        tensor=tensor,
        split=split,
        mu=mu,
        sigma=sigma,
    )
