"""Adapters for the real city open-data portal export formats.

The paper's datasets come from the NYC and Chicago open-data portals.
Those portals export CSVs with city-specific schemas; this module parses
both formats into the internal :class:`CrimeEvent` stream so a user with
real exports can feed them straight into
:func:`repro.data.dataset_from_events`.

Supported formats:

* **NYC NYPD Complaint Data Historic** — columns ``CMPLNT_FR_DT``
  (MM/DD/YYYY), ``CMPLNT_FR_TM`` (HH:MM:SS), ``OFNS_DESC`` (offense
  description), ``Latitude``, ``Longitude``.
* **Chicago Crimes** — columns ``Date`` (MM/DD/YYYY HH:MM:SS AM/PM),
  ``Primary Type``, ``Latitude``, ``Longitude``.

Both parsers are tolerant of the usual portal dirt: blank coordinates,
unparseable dates and unknown offense strings are counted and skipped,
never raised.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Iterable, Iterator

from .schema import CrimeEvent

__all__ = [
    "ParseReport",
    "parse_nyc_complaints",
    "parse_chicago_crimes",
    "NYC_OFFENSE_MAP",
    "CHICAGO_OFFENSE_MAP",
]

# Offense-description → paper category.  The paper's four NYC categories
# cover the descriptions below; anything else is skipped (the paper also
# uses a category subset, not the full feed).
NYC_OFFENSE_MAP: dict[str, str] = {
    "BURGLARY": "Burglary",
    "GRAND LARCENY": "Larceny",
    "PETIT LARCENY": "Larceny",
    "GRAND LARCENY OF MOTOR VEHICLE": "Larceny",
    "ROBBERY": "Robbery",
    "FELONY ASSAULT": "Assault",
    "ASSAULT 3 & RELATED OFFENSES": "Assault",
}

CHICAGO_OFFENSE_MAP: dict[str, str] = {
    "THEFT": "Theft",
    "BATTERY": "Battery",
    "ASSAULT": "Assault",
    "CRIMINAL DAMAGE": "Damage",
}


@dataclass
class ParseReport:
    """Counters describing what a portal parse kept and dropped."""

    parsed: int = 0
    skipped_offense: int = 0
    skipped_coordinates: int = 0
    skipped_date: int = 0
    offense_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return self.parsed + self.skipped_offense + self.skipped_coordinates + self.skipped_date

    def _count(self, category: str) -> None:
        self.parsed += 1
        self.offense_counts[category] = self.offense_counts.get(category, 0) + 1


def _parse_float(value: str | None) -> float | None:
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        return None


def _rows(path_or_rows: str | Path | Iterable[dict]) -> Iterator[dict]:
    if isinstance(path_or_rows, (str, Path)):
        with open(path_or_rows, newline="", encoding="utf-8") as handle:
            yield from csv.DictReader(handle)
    else:
        yield from path_or_rows


def parse_nyc_complaints(
    source: str | Path | Iterable[dict],
    offense_map: dict[str, str] | None = None,
    report: ParseReport | None = None,
) -> Iterator[CrimeEvent]:
    """Parse NYPD Complaint Data Historic rows into crime events.

    ``source`` is a CSV path or an iterable of dict rows.  Pass a
    :class:`ParseReport` to collect keep/drop statistics.
    """
    offense_map = offense_map if offense_map is not None else NYC_OFFENSE_MAP
    report = report if report is not None else ParseReport()
    for row in _rows(source):
        category = offense_map.get((row.get("OFNS_DESC") or "").strip().upper())
        if category is None:
            report.skipped_offense += 1
            continue
        lat = _parse_float(row.get("Latitude"))
        lon = _parse_float(row.get("Longitude"))
        if lat is None or lon is None:
            report.skipped_coordinates += 1
            continue
        date_part = (row.get("CMPLNT_FR_DT") or "").strip()
        time_part = (row.get("CMPLNT_FR_TM") or "00:00:00").strip() or "00:00:00"
        try:
            timestamp = datetime.strptime(f"{date_part} {time_part}", "%m/%d/%Y %H:%M:%S")
        except ValueError:
            report.skipped_date += 1
            continue
        report._count(category)
        yield CrimeEvent(category=category, timestamp=timestamp, longitude=lon, latitude=lat)


def parse_chicago_crimes(
    source: str | Path | Iterable[dict],
    offense_map: dict[str, str] | None = None,
    report: ParseReport | None = None,
) -> Iterator[CrimeEvent]:
    """Parse Chicago Data Portal "Crimes" rows into crime events."""
    offense_map = offense_map if offense_map is not None else CHICAGO_OFFENSE_MAP
    report = report if report is not None else ParseReport()
    for row in _rows(source):
        category = offense_map.get((row.get("Primary Type") or "").strip().upper())
        if category is None:
            report.skipped_offense += 1
            continue
        lat = _parse_float(row.get("Latitude"))
        lon = _parse_float(row.get("Longitude"))
        if lat is None or lon is None:
            report.skipped_coordinates += 1
            continue
        raw_date = (row.get("Date") or "").strip()
        try:
            timestamp = datetime.strptime(raw_date, "%m/%d/%Y %I:%M:%S %p")
        except ValueError:
            report.skipped_date += 1
            continue
        report._count(category)
        yield CrimeEvent(category=category, timestamp=timestamp, longitude=lon, latitude=lat)
