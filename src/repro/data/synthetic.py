"""Synthetic crime-data generator calibrated to the paper's datasets.

The real NYC (2014-15) and Chicago (2016-17) crime feeds are not
distributable offline, so we build a generative simulator that reproduces
the three dataset properties the paper's analysis rests on:

1. **Volume** — expected per-category case counts equal Table II.
2. **Skew** — per-region crime counts follow a heavy-tailed (power-law-
   like) rank-frequency curve, as in Figure 2.  We draw region intensity
   from a spatially-correlated log-normal random field and sharpen its
   tail with a ``spatial_skew`` exponent.
3. **Sparsity** — most region-level daily sequences have density degree
   (fraction of non-zero days) in (0, 0.25], as in Figure 1, because the
   skewed intensities put most regions far below one expected case/day.

Cross-category structure mirrors the paper's observation that crime types
are inter-dependent: each category's spatial field mixes a city-wide
common field with a category-specific one (``category_correlation``).
Temporal structure adds weekly periodicity, an annual season, and smooth
AR(1) noise — the signal the temporal encoders are designed to capture.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
from scipy import ndimage

from .grid import GridSegmentation
from .schema import CityConfig, CrimeEvent

__all__ = ["SyntheticCrimeGenerator", "spatial_intensity_field", "temporal_profile"]


def spatial_intensity_field(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    correlation: float = 1.5,
    skew: float = 1.6,
) -> np.ndarray:
    """Sample a normalised heavy-tailed spatial weight field.

    A Gaussian white-noise field is smoothed to ``correlation`` cells,
    exponentiated (log-normal marginals) and raised to ``skew`` to fatten
    the upper tail.  The result sums to one over regions.
    """
    noise = rng.standard_normal((rows, cols))
    smooth = ndimage.gaussian_filter(noise, sigma=correlation, mode="nearest")
    std = smooth.std()
    if std > 0:
        smooth = smooth / std
    field = np.exp(smooth) ** skew
    weights = field.reshape(-1)
    return weights / weights.sum()


def temporal_profile(
    num_days: int,
    rng: np.random.Generator,
    weekly_amplitude: float = 0.25,
    seasonal_amplitude: float = 0.30,
    noise_scale: float = 0.10,
    ar_coefficient: float = 0.8,
) -> np.ndarray:
    """Daily modulation factors with mean ≈ 1.

    Combines a weekly cycle (weekend effect), an annual sinusoid (summer
    crime peak) and AR(1) noise, floored at 0.05 to keep intensities
    positive.
    """
    days = np.arange(num_days)
    weekly = weekly_amplitude * np.sin(2 * np.pi * days / 7.0)
    seasonal = seasonal_amplitude * np.sin(2 * np.pi * days / 365.25 - np.pi / 2)
    ar = np.zeros(num_days)
    innovations = rng.standard_normal(num_days) * noise_scale
    for t in range(1, num_days):
        ar[t] = ar_coefficient * ar[t - 1] + innovations[t]
    profile = np.maximum(1.0 + weekly + seasonal + ar, 0.05)
    return profile / profile.mean()


class SyntheticCrimeGenerator:
    """Deterministic-by-seed generator of crime tensors and event streams."""

    def __init__(self, config: CityConfig, seed: int = 0):
        self.config = config
        self.seed = seed
        self.grid = GridSegmentation(config.bbox, config.rows, config.cols)
        self._intensity: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Intensity model
    # ------------------------------------------------------------------
    def intensity(self) -> np.ndarray:
        """Poisson intensity tensor ``λ[R, T, C]`` (expected counts/day)."""
        if self._intensity is not None:
            return self._intensity
        cfg = self.config
        rng = np.random.default_rng(self.seed)

        rho = cfg.category_correlation
        common = spatial_intensity_field(
            cfg.rows, cfg.cols, rng, cfg.spatial_correlation, cfg.spatial_skew
        )
        spatial = np.empty((cfg.num_regions, cfg.num_categories))
        for c in range(cfg.num_categories):
            specific = spatial_intensity_field(
                cfg.rows, cfg.cols, rng, cfg.spatial_correlation, cfg.spatial_skew
            )
            mixed = rho * common + (1.0 - rho) * specific
            spatial[:, c] = mixed / mixed.sum()

        temporal = np.empty((cfg.num_days, cfg.num_categories))
        for c in range(cfg.num_categories):
            temporal[:, c] = temporal_profile(
                cfg.num_days, rng, cfg.weekly_amplitude, cfg.seasonal_amplitude
            )

        totals = np.asarray(cfg.total_cases, dtype=float)
        per_day = totals / cfg.num_days
        # λ[r, t, c] = total_c/day * spatial share * temporal modulation
        self._intensity = (
            spatial[:, None, :] * temporal[None, :, :] * per_day[None, None, :]
        )
        return self._intensity

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def generate_tensor(self) -> np.ndarray:
        """Sample the crime tensor ``X[R, T, C]`` of daily counts."""
        rng = np.random.default_rng(self.seed + 1)
        return rng.poisson(self.intensity()).astype(np.float64)

    def generate_events(self, tensor: np.ndarray | None = None) -> list[CrimeEvent]:
        """Expand counts into individual ``CrimeEvent`` records.

        Coordinates are uniform within the region's grid cell and
        timestamps uniform within the day, matching the
        ``<type, timestamp, lon, lat>`` schema of paper §II.
        """
        cfg = self.config
        if tensor is None:
            tensor = self.generate_tensor()
        rng = np.random.default_rng(self.seed + 2)
        start = datetime.combine(cfg.start_date, datetime.min.time())
        events: list[CrimeEvent] = []
        regions, days, cats = np.nonzero(tensor)
        for region, day, cat in zip(regions, days, cats):
            count = int(tensor[region, day, cat])
            bounds = self.grid.cell_bounds(int(region))
            lats = rng.uniform(bounds.lat_min, bounds.lat_max, size=count)
            lons = rng.uniform(bounds.lon_min, bounds.lon_max, size=count)
            seconds = rng.integers(0, 86_400, size=count)
            for lat, lon, sec in zip(lats, lons, seconds):
                events.append(
                    CrimeEvent(
                        category=cfg.categories[cat],
                        timestamp=start + timedelta(days=int(day), seconds=int(sec)),
                        longitude=float(lon),
                        latitude=float(lat),
                    )
                )
        return events
