"""``repro.data`` — the crime-data pipeline.

Covers the paper's data substrate end to end: event schema and CSV io,
grid-based map segmentation, synthetic generators calibrated to the NYC
and Chicago datasets of Table II, tensorisation to ``X[R, T, C]``,
temporal splits, and density-degree statistics.
"""

from .datasets import CITY_CONFIGS, CrimeDataset, dataset_from_events, load_city
from .density import (
    SPARSE_BINS,
    density_degree,
    density_degree_per_category,
    density_histogram,
    group_regions_by_density,
)
from .grid import GridSegmentation
from .io import read_events_csv, write_events_csv
from .poi import POI_CATEGORIES, functionality_similarity, generate_poi_features, poi_for_generator
from .portals import ParseReport, parse_chicago_crimes, parse_nyc_complaints
from .schema import CHICAGO_CONFIG, NYC_CONFIG, BoundingBox, CityConfig, CrimeEvent
from .splits import TemporalSplit, temporal_split
from .synthetic import SyntheticCrimeGenerator, spatial_intensity_field, temporal_profile
from .tensorize import events_to_tensor, inverse_zscore, zscore, zscore_stats

__all__ = [
    "BoundingBox",
    "CrimeEvent",
    "CityConfig",
    "NYC_CONFIG",
    "CHICAGO_CONFIG",
    "CITY_CONFIGS",
    "GridSegmentation",
    "SyntheticCrimeGenerator",
    "spatial_intensity_field",
    "temporal_profile",
    "events_to_tensor",
    "zscore",
    "zscore_stats",
    "inverse_zscore",
    "TemporalSplit",
    "temporal_split",
    "density_degree",
    "density_degree_per_category",
    "density_histogram",
    "group_regions_by_density",
    "SPARSE_BINS",
    "CrimeDataset",
    "load_city",
    "dataset_from_events",
    "read_events_csv",
    "write_events_csv",
    "POI_CATEGORIES",
    "generate_poi_features",
    "poi_for_generator",
    "functionality_similarity",
    "ParseReport",
    "parse_nyc_complaints",
    "parse_chicago_crimes",
]
