"""Grid-based map segmentation.

The paper evenly partitions the urban space into ``R`` disjoint
geographical regions with a grid (3km×3km cells, §II).  This module maps
coordinates to region indices and exposes the grid topology (row/col
layout, neighbourhoods, adjacency) that the spatial convolution encoder
and the graph-based baselines rely on.
"""

from __future__ import annotations

import numpy as np

from .schema import BoundingBox

__all__ = ["GridSegmentation"]


class GridSegmentation:
    """Even ``rows × cols`` partition of a bounding box.

    Region indices are row-major: region ``r`` occupies grid cell
    ``(r // cols, r % cols)`` with row 0 at the southern edge.
    """

    def __init__(self, bbox: BoundingBox, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.bbox = bbox
        self.rows = rows
        self.cols = cols
        self._lat_step = (bbox.lat_max - bbox.lat_min) / rows
        self._lon_step = (bbox.lon_max - bbox.lon_min) / cols

    @property
    def num_regions(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def region_of(self, lat: float, lon: float) -> int:
        """Region index for a coordinate, or ``-1`` if outside the bbox."""
        if not self.bbox.contains(lat, lon):
            return -1
        row = min(int((lat - self.bbox.lat_min) / self._lat_step), self.rows - 1)
        col = min(int((lon - self.bbox.lon_min) / self._lon_step), self.cols - 1)
        return row * self.cols + col

    def regions_of(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`region_of`; out-of-box points map to ``-1``."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        rows = np.clip(((lats - self.bbox.lat_min) / self._lat_step).astype(int), 0, self.rows - 1)
        cols = np.clip(((lons - self.bbox.lon_min) / self._lon_step).astype(int), 0, self.cols - 1)
        regions = rows * self.cols + cols
        inside = (
            (lats >= self.bbox.lat_min)
            & (lats <= self.bbox.lat_max)
            & (lons >= self.bbox.lon_min)
            & (lons <= self.bbox.lon_max)
        )
        return np.where(inside, regions, -1)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def row_col(self, region: int) -> tuple[int, int]:
        if not 0 <= region < self.num_regions:
            raise IndexError(f"region {region} out of range [0, {self.num_regions})")
        return divmod(region, self.cols)

    def region_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"cell ({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def cell_bounds(self, region: int) -> BoundingBox:
        """Geographic bounds of one grid cell."""
        row, col = self.row_col(region)
        return BoundingBox(
            lat_min=self.bbox.lat_min + row * self._lat_step,
            lat_max=self.bbox.lat_min + (row + 1) * self._lat_step,
            lon_min=self.bbox.lon_min + col * self._lon_step,
            lon_max=self.bbox.lon_min + (col + 1) * self._lon_step,
        )

    def cell_center(self, region: int) -> tuple[float, float]:
        bounds = self.cell_bounds(region)
        return ((bounds.lat_min + bounds.lat_max) / 2, (bounds.lon_min + bounds.lon_max) / 2)

    def neighbors(self, region: int, diagonal: bool = False) -> list[int]:
        """Region indices adjacent on the grid (4- or 8-neighbourhood)."""
        row, col = self.row_col(region)
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        result = []
        for dr, dc in offsets:
            nr, nc = row + dr, col + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                result.append(nr * self.cols + nc)
        return result

    def adjacency_matrix(self, diagonal: bool = False, self_loops: bool = False) -> np.ndarray:
        """Dense binary region adjacency (the spatial graph for GNN baselines)."""
        n = self.num_regions
        adj = np.zeros((n, n))
        for region in range(n):
            for neighbor in self.neighbors(region, diagonal=diagonal):
                adj[region, neighbor] = 1.0
        if self_loops:
            np.fill_diagonal(adj, 1.0)
        return adj

    def normalized_adjacency(self, diagonal: bool = False) -> np.ndarray:
        """Symmetrically normalised adjacency with self loops: D^-1/2 (A+I) D^-1/2.

        This is the propagation operator used by GCN-style baselines
        (STGCN, STSHN's local passes, ...).
        """
        adj = self.adjacency_matrix(diagonal=diagonal, self_loops=True)
        degree = adj.sum(axis=1)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
        return adj * inv_sqrt[:, None] * inv_sqrt[None, :]

    def to_image(self, values: np.ndarray) -> np.ndarray:
        """Reshape a per-region vector ``(R,)`` or ``(R, k)`` to grid layout."""
        values = np.asarray(values)
        return values.reshape(self.rows, self.cols, *values.shape[1:])

    def from_image(self, image: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_image`."""
        image = np.asarray(image)
        return image.reshape(self.rows * self.cols, *image.shape[2:])
