"""Data schema: crime events, bounding boxes and city configurations.

Crime reports carry ``<crime type, timestamp, longitude, latitude>``
(paper §II, "Urban Crime Data"); a city configuration fixes the spatial
bounding box, grid resolution, time span and per-category case volumes
that the synthetic generator is calibrated against (paper Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime

__all__ = ["BoundingBox", "CrimeEvent", "CityConfig", "NYC_CONFIG", "CHICAGO_CONFIG"]


@dataclass(frozen=True)
class BoundingBox:
    """Geographic extent of the urban space, in decimal degrees."""

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self) -> None:
        if self.lat_min >= self.lat_max:
            raise ValueError(f"lat_min {self.lat_min} >= lat_max {self.lat_max}")
        if self.lon_min >= self.lon_max:
            raise ValueError(f"lon_min {self.lon_min} >= lon_max {self.lon_max}")

    def contains(self, lat: float, lon: float) -> bool:
        return self.lat_min <= lat <= self.lat_max and self.lon_min <= lon <= self.lon_max


@dataclass(frozen=True)
class CrimeEvent:
    """A single crime report record."""

    category: str
    timestamp: datetime
    longitude: float
    latitude: float


@dataclass(frozen=True)
class CityConfig:
    """Static description of one experiment city.

    ``rows × cols`` is the grid-based map segmentation (paper §II applies a
    3km×3km grid yielding 256 regions for NYC and 168 for Chicago);
    ``total_cases`` are the Table II per-category volumes the synthetic
    generator reproduces in expectation.
    """

    name: str
    bbox: BoundingBox
    rows: int
    cols: int
    start_date: date
    num_days: int
    categories: tuple[str, ...]
    total_cases: tuple[int, ...]
    # Skew / sparsity calibration knobs (see repro.data.synthetic).
    spatial_skew: float = 1.6
    spatial_correlation: float = 1.5
    category_correlation: float = 0.6
    weekly_amplitude: float = 0.25
    seasonal_amplitude: float = 0.30

    def __post_init__(self) -> None:
        if len(self.categories) != len(self.total_cases):
            raise ValueError("categories and total_cases must align")
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.num_days <= 0:
            raise ValueError("num_days must be positive")

    @property
    def num_regions(self) -> int:
        return self.rows * self.cols

    @property
    def num_categories(self) -> int:
        return len(self.categories)

    def scaled(self, rows: int, cols: int, num_days: int) -> "CityConfig":
        """Return a reduced-scale copy preserving statistical character.

        Case volumes shrink proportionally to the region-count and
        day-count reduction so per-cell sparsity stays comparable —
        DESIGN.md §5's reduced-scale protocol.
        """
        factor = (rows * cols * num_days) / (self.num_regions * self.num_days)
        totals = tuple(max(1, int(round(n * factor))) for n in self.total_cases)
        return CityConfig(
            name=self.name,
            bbox=self.bbox,
            rows=rows,
            cols=cols,
            start_date=self.start_date,
            num_days=num_days,
            categories=self.categories,
            total_cases=totals,
            spatial_skew=self.spatial_skew,
            spatial_correlation=self.spatial_correlation,
            category_correlation=self.category_correlation,
            weekly_amplitude=self.weekly_amplitude,
            seasonal_amplitude=self.seasonal_amplitude,
        )


# Paper Table II: NYC-Crimes, Jan 2014 – Dec 2015, 256 regions (16×16 grid),
# four categories with the listed case counts.
NYC_CONFIG = CityConfig(
    name="nyc",
    bbox=BoundingBox(40.50, 40.93, -74.25, -73.70),
    rows=16,
    cols=16,
    start_date=date(2014, 1, 1),
    num_days=730,
    categories=("Burglary", "Larceny", "Robbery", "Assault"),
    total_cases=(31_799, 85_899, 33_453, 40_429),
)

# Paper Table II: Chicago-Crimes, Jan 2016 – Dec 2017, 168 regions (14×12).
CHICAGO_CONFIG = CityConfig(
    name="chicago",
    bbox=BoundingBox(41.64, 42.02, -87.94, -87.52),
    rows=14,
    cols=12,
    start_date=date(2016, 1, 1),
    num_days=731,
    categories=("Theft", "Battery", "Assault", "Damage"),
    total_cases=(124_630, 99_389, 37_972, 59_886),
)
