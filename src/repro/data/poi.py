"""Synthetic points-of-interest (region functionality) substrate.

The paper's case study (Figure 8) validates learned hyperedges against
an *external source*: highly dependent regions "share similar
functionality (e.g., city parks, restaurant zone, shopping center)".
That external POI source is not available offline, so we synthesise one
with the property the validation relies on: **region functionality
correlates with the region's crime profile** (commercial zones attract
theft, entertainment districts attract battery, ...).

Each region gets a distribution over POI categories derived from its
(log) crime intensity profile through a fixed random mixing matrix plus
idiosyncratic noise — so regions with similar crime patterns have
similar functionality, and vice versa, without being identical.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticCrimeGenerator

__all__ = [
    "POI_CATEGORIES",
    "generate_poi_features",
    "poi_for_generator",
    "functionality_similarity",
]

POI_CATEGORIES: tuple[str, ...] = (
    "residential",
    "commercial",
    "entertainment",
    "education",
    "transport",
    "park",
)


def generate_poi_features(
    crime_profile: np.ndarray,
    rng: np.random.Generator,
    coupling: float = 2.0,
    noise: float = 0.5,
    num_poi_categories: int = len(POI_CATEGORIES),
) -> np.ndarray:
    """POI category distributions ``(R, P)`` from crime profiles ``(R, C)``.

    ``coupling`` scales how strongly functionality follows the crime
    profile; ``noise`` adds region idiosyncrasy.  Rows are softmax
    distributions over POI categories.
    """
    profile = np.log1p(np.asarray(crime_profile, dtype=float))
    std = profile.std()
    if std > 0:
        profile = (profile - profile.mean()) / std
    mixing = rng.standard_normal((profile.shape[1], num_poi_categories))
    logits = coupling * (profile @ mixing) + noise * rng.standard_normal(
        (profile.shape[0], num_poi_categories)
    )
    logits -= logits.max(axis=1, keepdims=True)
    weights = np.exp(logits)
    return weights / weights.sum(axis=1, keepdims=True)


def poi_for_generator(
    generator: SyntheticCrimeGenerator, seed: int = 0, **kwargs
) -> np.ndarray:
    """POI features coupled to a synthetic city's crime intensity field."""
    intensity = generator.intensity()  # (R, T, C)
    crime_profile = intensity.sum(axis=1)  # (R, C) expected volumes
    rng = np.random.default_rng(seed)
    return generate_poi_features(crime_profile, rng, **kwargs)


def functionality_similarity(poi: np.ndarray, region_a: int, region_b: int) -> float:
    """Cosine similarity of two regions' POI distributions."""
    a, b = poi[region_a], poi[region_b]
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(a @ b / denom)
