"""Temporal train/validation/test splitting.

The paper (§IV-A1) splits along the time dimension with a 7:1
train:test ratio and tunes on a validation set drawn from the last 30
days of the training span.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TemporalSplit", "temporal_split"]


@dataclass(frozen=True)
class TemporalSplit:
    """Day-index ranges for each split; train is ``[0, train_end)`` etc."""

    train_end: int
    val_end: int
    test_end: int

    @property
    def train_days(self) -> range:
        return range(0, self.train_end)

    @property
    def val_days(self) -> range:
        return range(self.train_end, self.val_end)

    @property
    def test_days(self) -> range:
        return range(self.val_end, self.test_end)

    def slice_train(self, tensor: np.ndarray) -> np.ndarray:
        return tensor[:, : self.train_end]

    def slice_val(self, tensor: np.ndarray) -> np.ndarray:
        return tensor[:, self.train_end : self.val_end]

    def slice_test(self, tensor: np.ndarray) -> np.ndarray:
        return tensor[:, self.val_end : self.test_end]


def temporal_split(
    num_days: int, train_ratio: float = 7.0 / 8.0, val_days: int = 30
) -> TemporalSplit:
    """Build the paper's split for a ``num_days``-long tensor.

    ``train_ratio`` covers train+val together (the validation tail is
    carved out of the training span); the remainder is the test period.
    ``val_days`` shrinks automatically for short synthetic spans so every
    split stays non-empty.
    """
    if num_days < 3:
        raise ValueError(f"need at least 3 days to split, got {num_days}")
    boundary = int(round(num_days * train_ratio))
    boundary = min(max(boundary, 1), num_days - 1)
    val = min(val_days, max(boundary // 4, 1))
    train_end = boundary - val
    if train_end < 1:
        train_end = 1
        val = boundary - 1
    return TemporalSplit(train_end=train_end, val_end=boundary, test_end=num_days)
