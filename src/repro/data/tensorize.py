"""Tensorisation: crime event streams → the three-way tensor X[R, T, C].

Each crime report is mapped to a region by its coordinates and a day
index by its timestamp; ``X[r, t, c]`` counts reports of type ``c`` in
region ``r`` on day ``t`` (paper §II).
"""

from __future__ import annotations

from datetime import date, datetime
from typing import Iterable, Sequence

import numpy as np

from .grid import GridSegmentation
from .schema import CrimeEvent

__all__ = ["events_to_tensor", "zscore_stats", "zscore", "inverse_zscore"]


def events_to_tensor(
    events: Iterable[CrimeEvent],
    grid: GridSegmentation,
    start_date: date,
    num_days: int,
    categories: Sequence[str],
) -> np.ndarray:
    """Aggregate events into ``X[R, T, C]``.

    Events outside the bounding box, the time span or the category list
    are silently dropped — exactly how raw feeds with stray coordinates
    are cleaned in practice.
    """
    cat_index = {name: i for i, name in enumerate(categories)}
    tensor = np.zeros((grid.num_regions, num_days, len(categories)))
    start = datetime.combine(start_date, datetime.min.time())
    for event in events:
        cat = cat_index.get(event.category)
        if cat is None:
            continue
        day = (event.timestamp - start).days
        if not 0 <= day < num_days:
            continue
        region = grid.region_of(event.latitude, event.longitude)
        if region < 0:
            continue
        tensor[region, day, cat] += 1.0
    return tensor


def zscore_stats(tensor: np.ndarray) -> tuple[float, float]:
    """Global mean and standard deviation of the crime tensor (Eq 1)."""
    mu = float(tensor.mean())
    sigma = float(tensor.std())
    if sigma == 0.0:
        sigma = 1.0
    return mu, sigma


def zscore(tensor: np.ndarray, mu: float, sigma: float) -> np.ndarray:
    """Z-Score normalisation ``(x - μ) / σ`` used by the embedding layer."""
    return (tensor - mu) / sigma


def inverse_zscore(values: np.ndarray, mu: float, sigma: float) -> np.ndarray:
    """Undo :func:`zscore` (to report predictions in case counts)."""
    return values * sigma + mu
