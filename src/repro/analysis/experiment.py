"""Shared experiment protocol: build → train → evaluate under one budget.

All benchmark tables/figures route through :func:`train_and_evaluate`, so
every compared model gets the identical optimiser, epoch count and data
budget (the fairness requirement of paper §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import STHSL, STHSLConfig
from ..data.datasets import CrimeDataset
from ..training import EvaluationResult, Trainer, WindowDataset, evaluate_model

__all__ = ["ExperimentBudget", "train_and_evaluate", "make_sthsl", "default_config"]


@dataclass(frozen=True)
class ExperimentBudget:
    """Training budget shared by every model in a comparison."""

    window: int = 14
    epochs: int = 4
    train_limit: int | None = 40  # windows per epoch (reduced-scale protocol)
    batch_size: int = 4
    lr: float = 1e-3
    weight_decay: float = 1e-5
    patience: int | None = None
    seed: int = 0


def default_config(dataset: CrimeDataset, budget: ExperimentBudget, **overrides) -> STHSLConfig:
    """ST-HSL config bound to a dataset's geometry at bench scale.

    Bench-scale defaults shrink capacity with the data (dim 8, 32
    hyperedges); pass explicit overrides to restore paper scale.
    """
    base = dict(
        rows=dataset.grid.rows,
        cols=dataset.grid.cols,
        num_categories=dataset.num_categories,
        window=budget.window,
        dim=8,
        num_hyperedges=32,
        num_global_temporal_layers=2,
    )
    base.update(overrides)
    return STHSLConfig(**base)


def make_sthsl(dataset: CrimeDataset, budget: ExperimentBudget, **overrides) -> STHSL:
    return STHSL(default_config(dataset, budget, **overrides), seed=budget.seed)


@dataclass
class ExperimentRun:
    """Everything a bench needs to print one table row."""

    evaluation: EvaluationResult
    epoch_seconds: list[float] = field(default_factory=list)
    best_val_mae: float = float("nan")


def train_and_evaluate(
    model,
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    split: str = "test",
) -> ExperimentRun:
    """Train ``model`` under ``budget`` and evaluate on ``split``.

    Statistical baselines (``requires_training = False``) skip the
    gradient loop and go straight to evaluation.
    """
    windows = WindowDataset(dataset, window=budget.window)
    epoch_seconds: list[float] = []
    best_val = float("nan")
    if getattr(model, "requires_training", True):
        trainer = Trainer(
            model,
            lr=budget.lr,
            weight_decay=budget.weight_decay,
            batch_size=budget.batch_size,
            seed=budget.seed,
        )
        result = trainer.fit(
            windows,
            epochs=budget.epochs,
            patience=budget.patience,
            train_limit=budget.train_limit,
        )
        epoch_seconds = result.epoch_seconds
        best_val = result.best_val_mae
    evaluation = evaluate_model(model, windows, split=split)
    return ExperimentRun(evaluation=evaluation, epoch_seconds=epoch_seconds, best_val_mae=best_val)
