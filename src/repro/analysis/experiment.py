"""Shared experiment protocol: build → train → evaluate under one budget.

All benchmark tables/figures route through :func:`train_and_evaluate`, so
every compared model gets the identical optimiser, epoch count and data
budget (the fairness requirement of paper §IV-A).  Model construction and
budget description live in :mod:`repro.api`; :func:`run` executes a
serializable :class:`~repro.api.RunSpec` end to end through the same
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import REGISTRY, ExperimentBudget, RunSpec
from ..core import STHSL, STHSLConfig
from ..data.datasets import CrimeDataset
from ..training import EvaluationResult, Trainer, WindowDataset, evaluate_model

__all__ = [
    "ExperimentBudget",
    "ExperimentRun",
    "train_and_evaluate",
    "run",
    "make_sthsl",
    "default_config",
]


def default_config(dataset: CrimeDataset, budget: ExperimentBudget, **overrides) -> STHSLConfig:
    """ST-HSL config bound to a dataset's geometry at bench scale.

    Bench-scale defaults shrink capacity with the data (dim 8, 32
    hyperedges); pass explicit overrides to restore paper scale.
    """
    base = dict(
        rows=dataset.grid.rows,
        cols=dataset.grid.cols,
        num_categories=dataset.num_categories,
        window=budget.window,
        dim=8,
        num_hyperedges=32,
        num_global_temporal_layers=2,
    )
    base.update(overrides)
    return STHSLConfig(**base)


def make_sthsl(dataset: CrimeDataset, budget: ExperimentBudget, **overrides) -> STHSL:
    return STHSL(default_config(dataset, budget, **overrides), seed=budget.seed)


@dataclass
class ExperimentRun:
    """Everything a bench needs to print one table row."""

    evaluation: EvaluationResult
    epoch_seconds: list[float] = field(default_factory=list)
    best_val_mae: float = float("nan")


def train_and_evaluate(
    model,
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    split: str = "test",
) -> ExperimentRun:
    """Train ``model`` under ``budget`` and evaluate on ``split``.

    Statistical baselines (``requires_training = False``) skip the
    gradient loop and go straight to evaluation.
    """
    windows = WindowDataset(dataset, window=budget.window)
    epoch_seconds: list[float] = []
    best_val = float("nan")
    if getattr(model, "requires_training", True):
        trainer = Trainer(
            model,
            lr=budget.lr,
            weight_decay=budget.weight_decay,
            batch_size=budget.batch_size,
            seed=budget.seed,
        )
        result = trainer.fit(
            windows,
            epochs=budget.epochs,
            patience=budget.patience,
            train_limit=budget.train_limit,
        )
        epoch_seconds = result.epoch_seconds
        best_val = result.best_val_mae
    evaluation = evaluate_model(model, windows, split=split)
    return ExperimentRun(evaluation=evaluation, epoch_seconds=epoch_seconds, best_val_mae=best_val)


def run(spec: RunSpec, dataset: CrimeDataset | None = None, split: str = "test") -> ExperimentRun:
    """Execute a serializable :class:`~repro.api.RunSpec` end to end.

    ``dataset`` short-circuits the data load when the caller already holds
    the spec's dataset (the comparison loop reuses one dataset across
    every model).  The model is resolved through the registry, so any
    registered name — ST-HSL included — runs under the identical protocol.
    """
    if dataset is None:
        dataset = spec.data.load()
    model = REGISTRY.build(
        spec.model,
        dataset=dataset,
        window=spec.budget.window,
        hidden=spec.hidden,
        seed=spec.budget.seed,
        **spec.overrides,
    )
    return train_and_evaluate(model, dataset, spec.budget, split=split)
