"""Ablation variant factory (paper Table IV and Figure 5).

Each named variant maps to a set of :class:`STHSLConfig` switch
overrides.  The names match the paper's rows exactly.
"""

from __future__ import annotations

from ..core import STHSL, STHSLConfig
from ..data.datasets import CrimeDataset
from .experiment import ExperimentBudget, default_config, train_and_evaluate

__all__ = [
    "MULTIVIEW_VARIANTS",
    "SSL_VARIANTS",
    "variant_config",
    "run_ablation",
]

# Figure 5: multi-view spatial-temporal convolution ablations.
MULTIVIEW_VARIANTS: dict[str, dict] = {
    "w/o S-Conv": {"use_spatial_conv": False},
    "w/o T-Conv": {"use_temporal_conv": False},
    "w/o C-Conv": {"cross_category": False},
    "w/o Local": {
        # Removing the local encoder also removes the contrastive pairing
        # (it needs both views).
        "use_local": False,
        "use_contrastive": False,
    },
    "ST-HSL": {},
}

# Table IV: dual-stage self-supervised learning ablations.
SSL_VARIANTS: dict[str, dict] = {
    "w/o Hyper": {
        # No hypergraph at all -> no global branch, no SSL stages.
        "use_hypergraph": False,
        "use_global": False,
        "use_infomax": False,
        "use_contrastive": False,
    },
    "w/o GlobalTem": {"use_global_temporal": False},
    "w/o Infomax": {"use_infomax": False},
    "w/o ConL": {"use_contrastive": False},
    "w/o Global": {
        # Keep the hypergraph SSL machinery but predict from the local
        # encoder only (paper variant 5).
        "use_global": False,
        "use_contrastive": False,
    },
    "Fusion w/o ConL": {"fusion": True, "use_contrastive": False},
    "ST-HSL": {},
}


def variant_config(
    name: str,
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    **extra,
) -> STHSLConfig:
    """Config for a named paper variant (searched in both tables)."""
    for table in (SSL_VARIANTS, MULTIVIEW_VARIANTS):
        if name in table:
            overrides = dict(table[name])
            overrides.update(extra)
            return default_config(dataset, budget, **overrides)
    raise KeyError(f"unknown ablation variant {name!r}")


def run_ablation(
    dataset: CrimeDataset,
    variants: dict[str, dict],
    budget: ExperimentBudget,
    **config_overrides,
) -> dict[str, dict[str, dict[str, float]]]:
    """Train and evaluate every variant; returns per-variant Table IV rows.

    Output: ``{variant: {category: {"mae": ..., "mape": ...}}}``.
    """
    results: dict[str, dict[str, dict[str, float]]] = {}
    for name, overrides in variants.items():
        merged = dict(overrides)
        merged.update(config_overrides)
        config = default_config(dataset, budget, **merged)
        model = STHSL(config, seed=budget.seed)
        run = train_and_evaluate(model, dataset, budget)
        results[name] = run.evaluation.per_category()
    return results
