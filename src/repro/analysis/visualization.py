"""Text rendering of spatial results (Figures 1, 4 and 8 analogues).

This environment has no plotting stack, so figures are reproduced as
data: ASCII heat maps over the region grid and aligned text tables.  The
numbers are the figure; the rendering is a convenience.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_heatmap", "format_table", "format_density_histogram"]

_SHADES = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, rows: int, cols: int, title: str = "") -> str:
    """Render a per-region vector as an ASCII heat map of the city grid.

    NaNs (regions with no data) render as ``'?'``.  Values are min-max
    normalised over the finite entries.
    """
    values = np.asarray(values, dtype=float).reshape(rows, cols)
    finite = values[np.isfinite(values)]
    lines = [title] if title else []
    if finite.size == 0:
        low, high = 0.0, 1.0
    else:
        low, high = float(finite.min()), float(finite.max())
    span = (high - low) or 1.0
    for r in range(rows - 1, -1, -1):  # row 0 is the southern edge
        chars = []
        for c in range(cols):
            v = values[r, c]
            if not np.isfinite(v):
                chars.append("?")
            else:
                level = int((v - low) / span * (len(_SHADES) - 1))
                chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def format_table(
    headers: list[str],
    rows: list[list],
    float_format: str = "{:.4f}",
) -> str:
    """Aligned text table; floats are formatted, everything else str()'d."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [float_format.format(v) if isinstance(v, float) else str(v) for v in row]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def _line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = [_line(headers), _line(["-" * w for w in widths])]
    out.extend(_line(r) for r in rendered)
    return "\n".join(out)


def format_density_histogram(edges: np.ndarray, counts: np.ndarray, categories: tuple[str, ...]) -> str:
    """Figure 1 as a table: fraction of regions per density bucket."""
    headers = ["density"] + list(categories)
    rows = []
    for i in range(len(edges) - 1):
        label = f"({edges[i]:.2f}, {edges[i+1]:.2f}]"
        rows.append([label] + [float(counts[i, c]) for c in range(counts.shape[1])])
    return format_table(headers, rows, float_format="{:.3f}")
