"""``repro.analysis`` — ablations, sweeps, interpretation, efficiency."""

from .ablation import MULTIVIEW_VARIANTS, SSL_VARIANTS, run_ablation, variant_config
from .efficiency import EFFICIENCY_MODELS, run_efficiency_study, time_epoch
from .experiment import (
    ExperimentBudget,
    default_config,
    make_sthsl,
    run,
    train_and_evaluate,
)
from .hyperparams import SWEEPS, run_hyperparameter_study, sweep_parameter
from .perf import (
    PERF_SCHEMA,
    enable_fast_alloc,
    measure_inference,
    measure_perf,
    validate_perf_payload,
    write_perf_json,
)
from .statistics import ComparisonResult, bootstrap_ci, daily_errors, paired_comparison
from .interpretation import (
    HyperedgeCaseStudy,
    functionality_alignment,
    hyperedge_pattern_similarity,
    top_regions_per_hyperedge,
)
from .visualization import ascii_heatmap, format_density_histogram, format_table

__all__ = [
    "ExperimentBudget",
    "train_and_evaluate",
    "run",
    "make_sthsl",
    "default_config",
    "MULTIVIEW_VARIANTS",
    "SSL_VARIANTS",
    "run_ablation",
    "variant_config",
    "SWEEPS",
    "sweep_parameter",
    "run_hyperparameter_study",
    "HyperedgeCaseStudy",
    "top_regions_per_hyperedge",
    "hyperedge_pattern_similarity",
    "functionality_alignment",
    "EFFICIENCY_MODELS",
    "run_efficiency_study",
    "time_epoch",
    "PERF_SCHEMA",
    "enable_fast_alloc",
    "measure_inference",
    "measure_perf",
    "validate_perf_payload",
    "write_perf_json",
    "ascii_heatmap",
    "format_table",
    "format_density_histogram",
    "ComparisonResult",
    "paired_comparison",
    "daily_errors",
    "bootstrap_ci",
]
