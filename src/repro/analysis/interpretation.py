"""Hyperedge interpretation (paper Figure 8, RQ5).

Extracts, from a trained ST-HSL model, the per-day region-hyperedge
dependency scores, the top-k most relevant regions per hyperedge per day,
and validates that hyperedge-mates share similar crime patterns — the
paper's case-study methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import STHSL

__all__ = [
    "HyperedgeCaseStudy",
    "top_regions_per_hyperedge",
    "hyperedge_pattern_similarity",
    "functionality_alignment",
]


def top_regions_per_hyperedge(
    relevance: np.ndarray,
    num_regions: int,
    num_categories: int,
    k: int = 3,
) -> np.ndarray:
    """Top-k regions by relevance per (day, hyperedge) — Figure 8's matrices.

    ``relevance`` has shape ``(T, H, R*C)``; scores are summed over
    categories before ranking.  Returns indices ``(T, H, k)``.
    """
    t, h, nodes = relevance.shape
    if nodes != num_regions * num_categories:
        raise ValueError("relevance node axis does not factor into R*C")
    per_region = relevance.reshape(t, h, num_regions, num_categories).sum(axis=-1)
    order = np.argsort(-per_region, axis=-1)
    return order[:, :, :k]


def hyperedge_pattern_similarity(
    tensor: np.ndarray,
    top_regions: np.ndarray,
    rng: np.random.Generator,
    num_pairs: int = 200,
) -> tuple[float, float]:
    """Compare crime-sequence correlation of hyperedge-mates vs random pairs.

    Returns ``(mate_corr, random_corr)``: the mean Pearson correlation of
    region crime sequences for pairs sharing a hyperedge's top-k list and
    for uniformly random region pairs.  The paper's qualitative claim
    (Figure 8: "highly dependent regions indeed share similar crime
    patterns") corresponds to ``mate_corr > random_corr``.
    """
    series = tensor.sum(axis=2)  # (R, T) total crime per day
    num_regions = series.shape[0]

    def _corr(a: int, b: int) -> float:
        x, y = series[a], series[b]
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    mate_values: list[float] = []
    t, h, k = top_regions.shape
    for _ in range(num_pairs):
        day = rng.integers(t)
        edge = rng.integers(h)
        picks = top_regions[day, edge]
        a, b = rng.choice(picks, size=2, replace=False) if k > 1 else (picks[0], picks[0])
        mate_values.append(_corr(int(a), int(b)))

    random_values = [
        _corr(int(rng.integers(num_regions)), int(rng.integers(num_regions)))
        for _ in range(num_pairs)
    ]
    return float(np.mean(mate_values)), float(np.mean(random_values))


def functionality_alignment(
    poi: np.ndarray,
    top_regions: np.ndarray,
    rng: np.random.Generator,
    num_pairs: int = 200,
) -> tuple[float, float]:
    """Compare POI (functionality) similarity of hyperedge-mates vs random.

    The external-source validation of Figure 8: regions bound by a
    hyperedge should share functionality.  Returns
    ``(mate_similarity, random_similarity)`` — mean cosine similarity of
    POI distributions over sampled pairs.
    """
    from ..data.poi import functionality_similarity

    num_regions = poi.shape[0]
    t, h, k = top_regions.shape
    mates = []
    for _ in range(num_pairs):
        day = rng.integers(t)
        edge = rng.integers(h)
        picks = top_regions[day, edge]
        a, b = (rng.choice(picks, size=2, replace=False) if k > 1 else (picks[0], picks[0]))
        mates.append(functionality_similarity(poi, int(a), int(b)))
    randoms = [
        functionality_similarity(poi, int(rng.integers(num_regions)), int(rng.integers(num_regions)))
        for _ in range(num_pairs)
    ]
    return float(np.mean(mates)), float(np.mean(randoms))


@dataclass
class HyperedgeCaseStudy:
    """Figure 8 artefacts for one trained model and one window."""

    relevance: np.ndarray  # (T, H, R*C)
    top_regions: np.ndarray  # (T, H, k)
    mate_correlation: float
    random_correlation: float

    @classmethod
    def from_model(
        cls,
        model: STHSL,
        window: np.ndarray,
        tensor: np.ndarray,
        k: int = 3,
        seed: int = 0,
    ) -> "HyperedgeCaseStudy":
        cfg = model.config
        relevance = model.hyperedge_relevance(window)
        top = top_regions_per_hyperedge(relevance, cfg.num_regions, cfg.num_categories, k=k)
        rng = np.random.default_rng(seed)
        mate, rand = hyperedge_pattern_similarity(tensor, top, rng)
        return cls(
            relevance=relevance,
            top_regions=top,
            mate_correlation=mate,
            random_correlation=rand,
        )

    def dependency_map(self, day: int, hyperedge: int, num_categories: int) -> np.ndarray:
        """Per-region dependency scores for one (day, hyperedge) pair —
        the data behind Figure 8's sub-figures (a)-(p)."""
        scores = self.relevance[day, hyperedge]
        num_regions = scores.size // num_categories
        return scores.reshape(num_regions, num_categories).sum(axis=1)
