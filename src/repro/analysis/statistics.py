"""Statistical comparison of forecasting models.

The paper reports point estimates; a credible reproduction should also
say whether gaps are noise.  This module provides the standard
time-series comparison toolkit:

* paired per-day error series for two models,
* paired t-test and Wilcoxon signed-rank test (via scipy),
* bootstrap confidence intervals for a model's metric and for the
  difference between two models.

All tests operate on *per-day* masked MAE, the paper's reporting unit
("averaged over all days in the test period").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..training.evaluation import EvaluationResult
from ..training.metrics import masked_mae

__all__ = [
    "daily_errors",
    "paired_comparison",
    "bootstrap_ci",
    "ComparisonResult",
]


def daily_errors(evaluation: EvaluationResult, category: int | None = None) -> np.ndarray:
    """Per-test-day masked MAE series ``(D,)`` for one evaluation.

    Days where the (category-sliced) target is all-zero yield NaN and are
    dropped by the comparison helpers.
    """
    preds = evaluation.predictions
    targets = evaluation.targets
    if category is not None:
        preds = preds[:, :, category]
        targets = targets[:, :, category]
    return np.array([masked_mae(p, t) for p, t in zip(preds, targets)])


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a paired model comparison on per-day errors."""

    mean_a: float
    mean_b: float
    mean_difference: float  # a - b; negative means A is better
    t_statistic: float
    t_pvalue: float
    wilcoxon_statistic: float
    wilcoxon_pvalue: float
    num_days: int

    @property
    def a_better(self) -> bool:
        return self.mean_difference < 0

    def significant(self, alpha: float = 0.05) -> bool:
        """Both tests agree the gap is unlikely under the null."""
        return self.t_pvalue < alpha and self.wilcoxon_pvalue < alpha


def paired_comparison(
    eval_a: EvaluationResult,
    eval_b: EvaluationResult,
    category: int | None = None,
) -> ComparisonResult:
    """Paired t-test + Wilcoxon signed-rank on per-day masked MAE.

    Both evaluations must cover the same test days (same dataset/split).
    """
    errors_a = daily_errors(eval_a, category)
    errors_b = daily_errors(eval_b, category)
    if errors_a.shape != errors_b.shape:
        raise ValueError("evaluations cover different numbers of test days")
    valid = ~(np.isnan(errors_a) | np.isnan(errors_b))
    a, b = errors_a[valid], errors_b[valid]
    if a.size < 2:
        raise ValueError("need at least 2 valid test days for a paired test")
    differences = a - b
    if np.allclose(differences, 0.0):
        t_stat, t_p = 0.0, 1.0
        w_stat, w_p = 0.0, 1.0
    else:
        t_stat, t_p = stats.ttest_rel(a, b)
        w_stat, w_p = stats.wilcoxon(a, b)
    return ComparisonResult(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        mean_difference=float(differences.mean()),
        t_statistic=float(t_stat),
        t_pvalue=float(t_p),
        wilcoxon_statistic=float(w_stat),
        wilcoxon_pvalue=float(w_p),
        num_days=int(a.size),
    )


def bootstrap_ci(
    values: np.ndarray,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile bootstrap CI for the mean of ``values``.

    Returns ``(mean, low, high)``; NaNs are dropped first.
    """
    values = np.asarray(values, dtype=float)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise ValueError("no finite values to bootstrap")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(values, size=(num_resamples, values.size), replace=True)
    means = resamples.mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return float(values.mean()), float(low), float(high)
