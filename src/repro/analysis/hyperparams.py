"""Hyperparameter impact study (paper Figure 7, RQ4).

Sweeps one knob at a time — hidden units, hyperedge count, kernel size,
number of local conv layers, number of global conv layers — keeping all
other parameters at defaults, exactly the protocol of §IV-E.
"""

from __future__ import annotations

from ..core import STHSL
from ..data.datasets import CrimeDataset
from .experiment import ExperimentBudget, default_config, train_and_evaluate

__all__ = ["SWEEPS", "sweep_parameter", "run_hyperparameter_study"]

# Figure 7's five panels mapped to config fields.  Values are bench-scale
# analogues of the paper's ranges ({2^2..2^5} hidden units, {2^5..2^8}
# hyperedges, kernel {3,5,7,9}, local conv {1..4}, global conv {2..6}).
SWEEPS: dict[str, tuple[str, tuple]] = {
    "hidden_units": ("dim", (4, 8, 16, 32)),
    "hyperedges": ("num_hyperedges", (8, 16, 32, 64)),
    "kernel_size": ("kernel_size", (3, 5, 7)),
    "local_conv_layers": ("num_spatial_layers", (1, 2, 3, 4)),
    "global_conv_layers": ("num_global_temporal_layers", (1, 2, 3, 4)),
}


def sweep_parameter(
    dataset: CrimeDataset,
    field: str,
    values: tuple,
    budget: ExperimentBudget,
    **config_overrides,
) -> dict:
    """Train ST-HSL for each value of ``field``; returns overall metrics.

    Output: ``{value: {"mae": ..., "mape": ...}}``.
    """
    results: dict = {}
    for value in values:
        overrides = dict(config_overrides)
        overrides[field] = value
        if field == "num_spatial_layers":
            # The paper varies both local conv stacks together.
            overrides.setdefault("num_temporal_layers", value)
        config = default_config(dataset, budget, **overrides)
        model = STHSL(config, seed=budget.seed)
        run = train_and_evaluate(model, dataset, budget)
        results[value] = run.evaluation.overall()
    return results


def run_hyperparameter_study(
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    sweeps: dict[str, tuple[str, tuple]] | None = None,
) -> dict[str, dict]:
    """All Figure 7 panels: ``{panel: {value: {"mae", "mape"}}}``."""
    sweeps = sweeps or SWEEPS
    return {
        panel: sweep_parameter(dataset, field, values, budget)
        for panel, (field, values) in sweeps.items()
    }
