"""Model efficiency study (paper Table V, RQ6).

Measures wall-clock seconds per training epoch for each compared model
under identical data budgets.  Absolute numbers are not comparable to the
paper's GPU server, but the *ranking* (which architectures are cheap or
expensive) is the reproducible claim.
"""

from __future__ import annotations

from ..api import REGISTRY
from ..data.datasets import CrimeDataset
from ..training import Trainer, WindowDataset
from .experiment import ExperimentBudget

__all__ = ["time_epoch", "run_efficiency_study", "EFFICIENCY_MODELS"]

# Table V's ten models.
EFFICIENCY_MODELS: tuple[str, ...] = (
    "STGCN",
    "DMSTGCN",
    "STtrans",
    "GMAN",
    "ST-MetaNet",
    "DeepCrime",
    "STSHN",
    "DCRNN",
    "STDN",
    "ST-HSL",
)


def time_epoch(model, dataset: CrimeDataset, budget: ExperimentBudget) -> float:
    """Seconds for one training epoch of ``model`` under ``budget``."""
    windows = WindowDataset(dataset, window=budget.window)
    trainer = Trainer(
        model,
        lr=budget.lr,
        weight_decay=budget.weight_decay,
        batch_size=budget.batch_size,
        seed=budget.seed,
    )
    return trainer.timed_epoch(windows, train_limit=budget.train_limit)


def run_efficiency_study(
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    models: tuple[str, ...] = EFFICIENCY_MODELS,
    hidden: int = 8,
) -> dict[str, float]:
    """Per-epoch seconds per model — the Table V column for one city."""
    results: dict[str, float] = {}
    for name in models:
        model = REGISTRY.build(
            name, dataset=dataset, window=budget.window, hidden=hidden, seed=budget.seed
        )
        results[name] = time_epoch(model, dataset, budget)
    return results
