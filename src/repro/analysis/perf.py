"""Training/inference throughput measurement (the tracked perf suite).

ST-HSL's efficiency study (paper Table V) compares architectures; this
module instead tracks *our implementation's* throughput over time so
every PR can defend a perf trajectory.  Schema ``repro.perf/v2`` records
two sections:

* ``training`` — windows/sec and epoch wall-clock for the batched
  execution path at several batch sizes, the per-sample fallback path,
  and the float32 compute mode (the v1 payload, nested);
* ``inference`` — predictions/sec for the serving-relevant paths: the
  graph-building forward (what a naive ``predict`` costs: autograd
  closures + parent tracking per op), the per-sample no-grad fast path,
  and the batched fast path under a reusable
  :class:`~repro.nn.BufferArena`.

Entry point: ``benchmarks/perf/run_all.py``; a tier-1 smoke test
(``pytest -m perf_smoke``) validates the schema on a tiny geometry and
guards the committed ``BENCH_perf.json`` speedups against regression.
"""

from __future__ import annotations

import ctypes
import json
import time
from typing import Callable, Sequence

import numpy as np

from ..core import STHSL
from ..data.datasets import CrimeDataset
from ..training import Trainer, WindowDataset
from .experiment import ExperimentBudget, make_sthsl

__all__ = [
    "PERF_SCHEMA",
    "enable_fast_alloc",
    "measure_perf",
    "measure_inference",
    "validate_perf_payload",
    "write_perf_json",
]

PERF_SCHEMA = "repro.perf/v2"

_REQUIRED_TRAINING_KEYS = {"mode", "dtype", "batch_size", "epoch_seconds", "windows_per_sec"}
_REQUIRED_INFERENCE_KEYS = {"path", "dtype", "batch_size", "seconds", "predictions_per_sec"}
_INFERENCE_PATHS = ("graph", "no_grad", "batched")


def enable_fast_alloc() -> bool:
    """Raise glibc's mmap/trim thresholds so large numpy temporaries are reused.

    The autograd hot path allocates and frees multi-megabyte arrays every
    op; with default thresholds glibc returns them to the kernel each time
    and every reuse pays page faults (~10-15% of epoch time on the bench
    geometry).  Safe no-op on non-glibc platforms.  Returns whether the
    tuning was applied.
    """
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        m_mmap_threshold, m_trim_threshold = -3, -1
        threshold = 128 * 1024 * 1024
        ok = libc.mallopt(m_mmap_threshold, threshold)
        ok &= libc.mallopt(m_trim_threshold, threshold)
        return bool(ok)
    except OSError:  # pragma: no cover - non-glibc platform
        return False


def _timed_epoch(model, windows: WindowDataset, budget: ExperimentBudget,
                 batch_size: int, use_batched: bool, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for one training epoch."""
    trainer = Trainer(
        model,
        lr=budget.lr,
        weight_decay=budget.weight_decay,
        batch_size=batch_size,
        seed=budget.seed,
        use_batched=use_batched,
    )
    best = float("inf")
    trainer._train_epoch(windows, budget.train_limit)  # warm caches / BLAS
    for _ in range(reps):
        start = time.perf_counter()
        trainer._train_epoch(windows, budget.train_limit)
        best = min(best, time.perf_counter() - start)
    return best


def _timed_call(fn: Callable[[], None], reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for ``fn()`` (one warm-up call)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_inference(
    model,
    stacked: np.ndarray,
    batch_size: int,
    reps: int = 3,
    dtype: str = "float64",
) -> tuple[list[dict], dict[str, float], dict[str, float]]:
    """Predictions/sec over ``stacked`` ``(N, R, W, C)`` windows, three ways.

    * ``graph`` — per-sample eval-mode ``forward`` with gradient recording
      on: the cost a ``predict`` pays without the no-grad fast path (the
      pre-fast-path serving baseline);
    * ``no_grad`` — per-sample ``predict`` (graph-free fast path + arena);
    * ``batched`` — ``predict_batch`` over ``batch_size`` chunks, one
      vectorized pass per chunk reusing the model's arena throughout.

    Returns ``(mode_entries, speedups, seconds)`` — the payload's
    inference entries plus the unrounded per-path best times, so callers
    can derive further ratios without rounding error.
    """
    num_windows = len(stacked)
    model.eval()

    def run_graph() -> None:
        for window in stacked:
            model.forward(window)

    def run_no_grad() -> None:
        for window in stacked:
            model.predict(window)

    def run_batched() -> None:
        for start in range(0, num_windows, batch_size):
            model.predict_batch(stacked[start : start + batch_size])

    entries = []
    seconds: dict[str, float] = {}
    for path, batch, fn in (
        ("graph", 1, run_graph),
        ("no_grad", 1, run_no_grad),
        ("batched", batch_size, run_batched),
    ):
        elapsed = _timed_call(fn, reps)
        seconds[path] = elapsed
        entries.append(
            {
                "path": path,
                "dtype": dtype,
                "batch_size": batch,
                "seconds": round(elapsed, 4),
                "predictions_per_sec": round(num_windows / elapsed, 2),
            }
        )
    speedups = {
        "no_grad_vs_graph": round(seconds["graph"] / seconds["no_grad"], 3),
        "batched_vs_graph": round(seconds["graph"] / seconds["batched"], 3),
        "batched_vs_no_grad": round(seconds["no_grad"] / seconds["batched"], 3),
    }
    return entries, speedups, seconds


def measure_perf(
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    batch_sizes: Sequence[int] = (1, 4, 16),
    reps: int = 3,
    include_float32: bool = True,
    seed_reference: dict | None = None,
    fast_alloc: bool = True,
    inference_windows: int = 64,
    inference_batch: int | None = None,
) -> dict:
    """Measure training and inference throughput across execution modes.

    Training modes: the per-sample fallback path (``sequential``, at the
    largest batch size so the accumulation schedule matches), the batched
    path at each requested batch size, and optionally the float32 compute
    mode at the largest batch size.  Inference paths: see
    :func:`measure_inference`, plus — when ``include_float32`` — the
    batched fast path in the float32 compute mode (the serving analogue
    of the training float32 column).  ``seed_reference`` (a recorded
    pre-batching measurement, see ``benchmarks/perf/run_all.py``) is
    embedded verbatim and used for the headline speedup when provided.

    ``fast_alloc`` applies :func:`enable_fast_alloc`, which retunes the
    process-wide glibc allocator for the rest of the process — pass
    ``False`` when measuring inside a host process (test runner,
    notebook) whose allocator behaviour should be left alone.
    """
    if fast_alloc:
        enable_fast_alloc()
    windows = WindowDataset(dataset, window=budget.window)
    # Windows actually visited per epoch: the limit cannot exceed the split.
    available = windows.num_samples("train")
    num_windows = min(budget.train_limit, available) if budget.train_limit else available
    top_batch = max(batch_sizes)
    modes: list[dict] = []

    def record(mode: str, dtype: str, batch_size: int, seconds: float) -> dict:
        entry = {
            "mode": mode,
            "dtype": dtype,
            "batch_size": batch_size,
            "epoch_seconds": round(seconds, 4),
            "windows_per_sec": round(num_windows / seconds, 2),
        }
        modes.append(entry)
        return entry

    sequential = _timed_epoch(
        make_sthsl(dataset, budget), windows, budget, top_batch, use_batched=False, reps=reps
    )
    record("sequential", "float64", top_batch, sequential)

    batched: dict[int, float] = {}
    for batch_size in batch_sizes:
        batched[batch_size] = _timed_epoch(
            make_sthsl(dataset, budget), windows, budget, batch_size, use_batched=True, reps=reps
        )
        record("batched", "float64", batch_size, batched[batch_size])

    if include_float32:
        base = make_sthsl(dataset, budget)
        model32 = STHSL(base.config.with_overrides(compute_dtype="float32"), seed=budget.seed)
        seconds32 = _timed_epoch(model32, windows, budget, top_batch, use_batched=True, reps=reps)
        record("batched", "float32", top_batch, seconds32)

    training_speedups = {
        "batched_top_vs_sequential": round(sequential / batched[top_batch], 3),
    }

    # ----- Inference section -----
    samples = list(windows.samples("train"))[: max(1, inference_windows)]
    stacked = np.stack([sample.window for sample in samples])
    # Forward-only passes are memory-locality-bound at the bench geometry,
    # same as training: small batches win on a single core.
    infer_batch = inference_batch if inference_batch is not None else min(4, top_batch)
    infer_model = make_sthsl(dataset, budget)
    inference_modes, inference_speedups, inference_seconds = measure_inference(
        infer_model, stacked, batch_size=infer_batch, reps=reps
    )
    if include_float32:
        # The serving-mode counterpart of the training section's float32
        # column: the batched fast path in the float32 compute mode,
        # against the same float64 graph-building baseline.
        graph_seconds = inference_seconds["graph"]
        infer32 = STHSL(
            infer_model.config.with_overrides(compute_dtype="float32"), seed=budget.seed
        )

        def run_batched32() -> None:
            for start in range(0, len(stacked), infer_batch):
                infer32.predict_batch(stacked[start : start + infer_batch])

        infer32.eval()
        elapsed32 = _timed_call(run_batched32, reps)
        inference_modes.append(
            {
                "path": "batched",
                "dtype": "float32",
                "batch_size": infer_batch,
                "seconds": round(elapsed32, 4),
                "predictions_per_sec": round(len(stacked) / elapsed32, 2),
            }
        )
        inference_speedups["batched_float32_vs_graph"] = round(graph_seconds / elapsed32, 3)

    payload = {
        "schema": PERF_SCHEMA,
        "geometry": {
            "rows": dataset.grid.rows,
            "cols": dataset.grid.cols,
            "num_days": dataset.num_days,
            "num_categories": dataset.num_categories,
            "window": budget.window,
            "train_limit": budget.train_limit,
        },
        "training": {"modes": modes, "speedups": training_speedups},
        "inference": {
            "num_windows": len(stacked),
            "modes": inference_modes,
            "speedups": inference_speedups,
        },
    }
    if seed_reference is not None:
        payload["seed_reference"] = dict(seed_reference)
        seed_seconds = float(seed_reference["epoch_seconds"])
        training_speedups["batched_top_vs_seed"] = round(seed_seconds / batched[top_batch], 3)
        if include_float32:
            training_speedups["batched_top_float32_vs_seed"] = round(seed_seconds / seconds32, 3)
    return payload


def _validate_section(section, name: str, required_keys: set, time_key: str, rate_key: str) -> None:
    if not isinstance(section, dict):
        raise ValueError(f"{name} must be a mapping")
    for key in ("modes", "speedups"):
        if key not in section:
            raise ValueError(f"{name} missing key {key!r}")
    if not isinstance(section["modes"], list) or not section["modes"]:
        raise ValueError(f"{name}.modes must be a non-empty list")
    for entry in section["modes"]:
        missing = required_keys - set(entry)
        if missing:
            raise ValueError(f"{name} mode entry missing keys {sorted(missing)}")
        if entry["dtype"] not in ("float32", "float64"):
            raise ValueError(f"unknown dtype {entry['dtype']!r}")
        if not entry[time_key] > 0 or not entry[rate_key] > 0:
            raise ValueError(f"{name} timings must be positive")
    if not all(isinstance(v, (int, float)) and v > 0 for v in section["speedups"].values()):
        raise ValueError(f"{name}.speedups must be positive numbers")


def validate_perf_payload(payload: dict) -> None:
    """Raise ``ValueError`` if ``payload`` does not match the v2 perf schema."""
    if payload.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"unexpected schema tag: {payload.get('schema')!r} (expected {PERF_SCHEMA}; "
            "re-run benchmarks/perf/run_all.py to regenerate v1 payloads)"
        )
    for key in ("geometry", "training", "inference"):
        if key not in payload:
            raise ValueError(f"missing top-level key {key!r}")
    _validate_section(
        payload["training"], "training", _REQUIRED_TRAINING_KEYS, "epoch_seconds", "windows_per_sec"
    )
    for entry in payload["training"]["modes"]:
        if entry["mode"] not in ("sequential", "batched"):
            raise ValueError(f"unknown training mode {entry['mode']!r}")
    _validate_section(
        payload["inference"], "inference", _REQUIRED_INFERENCE_KEYS, "seconds", "predictions_per_sec"
    )
    for entry in payload["inference"]["modes"]:
        if entry["path"] not in _INFERENCE_PATHS:
            raise ValueError(f"unknown inference path {entry['path']!r}")


def write_perf_json(payload: dict, path) -> None:
    """Validate and pretty-write a perf payload."""
    validate_perf_payload(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
