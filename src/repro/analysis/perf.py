"""Training/inference/serving throughput measurement (the tracked perf suite).

ST-HSL's efficiency study (paper Table V) compares architectures; this
module instead tracks *our implementation's* throughput over time so
every PR can defend a perf trajectory.  Schema ``repro.perf/v6`` records
five sections:

* ``training`` — windows/sec and epoch wall-clock for the batched
  execution path at several batch sizes, the per-sample fallback path,
  and the float32 compute mode (the v1 payload, nested);
* ``inference`` — predictions/sec for the serving-relevant paths: the
  graph-building forward (what a naive ``predict`` costs: autograd
  closures + parent tracking per op), the per-sample no-grad fast path,
  and the batched fast path under a reusable
  :class:`~repro.nn.BufferArena`;
* ``serving`` — end-to-end requests/sec through a
  :class:`~repro.serving.ForecastService` at several client
  concurrencies *and worker-pool sizes* (the ``workers`` dimension, new
  in v4: every service entry records how many worker threads drained
  the queue), against two sequential per-sample baselines: the
  ``graph`` path (the naive serving baseline: what a pre-fast-path
  ``predict`` loop cost) and the ``no_grad`` path (today's per-sample
  ``Forecaster.predict`` loop).  The service loads the artifact through
  a :class:`~repro.serving.ModelPool` in the float32 serving mode, so
  its margin over the baselines is the serving stack's contribution:
  served dtype + cross-request micro-batching + load amortisation —
  plus, on multi-core hosts, parallel workers (each predicting under
  its own thread-local execution context);
* ``kernels`` (new in v5) — per-geometry convolution-strategy timings
  (im2col vs tap_gemm vs single_gemm, per op and dtype, on the batched
  no-grad inference path) and the sub-f32 serving-dtype sweep
  (float32 auto-kernels / float16 / experimental int8 against a pinned
  float32-im2col baseline row), each serving row carrying its MAE delta
  against native-f64 predictions and a relative accuracy gate
  (:data:`KERNEL_MAE_GATES`) so speed never silently costs accuracy.
  Run at both the 6x6 toy grid and the 16x16 paper-scale grid by
  ``benchmarks/perf/run_all.py``;
* ``network`` (new in v6) — requests/sec for the same artifact behind
  three deployment shapes at one client concurrency: ``local`` (the
  in-process :class:`~repro.serving.ForecastService`, the wire-tax
  reference), ``remote`` (the same service behind a
  :class:`~repro.serving.NetworkServer` driven through the
  :class:`~repro.serving.RemoteForecastService` client SDK over a real
  loopback socket — HTTP parse + JSON encode/decode per request), and
  ``process_workers`` (the service backed by a
  :class:`~repro.serving.WorkerPool` of forked worker processes —
  pickle + pipe per job, but true multi-core inference).

Entry point: ``benchmarks/perf/run_all.py``; a tier-1 smoke test
(``pytest -m perf_smoke``) validates the schema on a tiny geometry and
guards the committed ``BENCH_perf.json`` speedups against regression.
"""

from __future__ import annotations

import ctypes
import json
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core import STHSL
from ..data.datasets import CrimeDataset
from ..training import Trainer, WindowDataset
from .experiment import ExperimentBudget, make_sthsl

__all__ = [
    "KERNEL_MAE_GATES",
    "PERF_SCHEMA",
    "drive_clients",
    "enable_fast_alloc",
    "measure_kernels",
    "measure_network",
    "measure_perf",
    "measure_inference",
    "measure_serving",
    "validate_perf_payload",
    "write_perf_json",
]

PERF_SCHEMA = "repro.perf/v6"

#: Relative MAE gates for the sub-f32 serving rows: mean |prediction
#: delta| vs the native-f64 forecaster, divided by the mean |f64
#: prediction|.  float16 weight rounding must stay within 0.5%; the
#: experimental int8 row gets the looser post-training-quantization
#: budget.  The perf smoke test fails the build when a recorded row
#: exceeds its gate.
KERNEL_MAE_GATES = {"float16": 0.005, "int8": 0.05}

_REQUIRED_TRAINING_KEYS = {"mode", "dtype", "batch_size", "epoch_seconds", "windows_per_sec"}
_REQUIRED_INFERENCE_KEYS = {"path", "dtype", "batch_size", "seconds", "predictions_per_sec"}
_REQUIRED_SEQUENTIAL_KEYS = {"path", "dtype", "requests_per_sec"}
_REQUIRED_SERVICE_KEYS = {"workers", "concurrency", "requests_per_sec", "mean_batch"}
_REQUIRED_KERNEL_CONV_KEYS = {"op", "dtype", "strategy", "calls", "seconds", "per_call_ms"}
_REQUIRED_KERNEL_SERVING_KEYS = {"mode", "served_dtype", "predictions_per_sec", "mae_delta", "mae_delta_rel"}
_REQUIRED_NETWORK_KEYS = {"mode", "concurrency", "requests_per_sec"}
_INFERENCE_PATHS = ("graph", "no_grad", "batched")
_SEQUENTIAL_PATHS = ("graph", "no_grad")
_KERNEL_SERVING_MODES = ("float32_baseline_im2col", "float32", "float16", "int8")
_NETWORK_MODES = ("local", "remote", "process_workers")


def enable_fast_alloc() -> bool:
    """Raise glibc's mmap/trim thresholds so large numpy temporaries are reused.

    The autograd hot path allocates and frees multi-megabyte arrays every
    op; with default thresholds glibc returns them to the kernel each time
    and every reuse pays page faults (~10-15% of epoch time on the bench
    geometry).  Safe no-op on non-glibc platforms.  Returns whether the
    tuning was applied.
    """
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        m_mmap_threshold, m_trim_threshold = -3, -1
        threshold = 128 * 1024 * 1024
        ok = libc.mallopt(m_mmap_threshold, threshold)
        ok &= libc.mallopt(m_trim_threshold, threshold)
        return bool(ok)
    except OSError:  # pragma: no cover - non-glibc platform
        return False


def _timed_epoch(model, windows: WindowDataset, budget: ExperimentBudget,
                 batch_size: int, use_batched: bool, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for one training epoch."""
    trainer = Trainer(
        model,
        lr=budget.lr,
        weight_decay=budget.weight_decay,
        batch_size=batch_size,
        seed=budget.seed,
        use_batched=use_batched,
    )
    best = float("inf")
    trainer._train_epoch(windows, budget.train_limit)  # warm caches / BLAS
    for _ in range(reps):
        start = time.perf_counter()
        trainer._train_epoch(windows, budget.train_limit)
        best = min(best, time.perf_counter() - start)
    return best


def _timed_call(fn: Callable[[], None], reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for ``fn()`` (one warm-up call)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_inference(
    model,
    stacked: np.ndarray,
    batch_size: int,
    reps: int = 3,
    dtype: str = "float64",
) -> tuple[list[dict], dict[str, float], dict[str, float]]:
    """Predictions/sec over ``stacked`` ``(N, R, W, C)`` windows, three ways.

    * ``graph`` — per-sample eval-mode ``forward`` with gradient recording
      on: the cost a ``predict`` pays without the no-grad fast path (the
      pre-fast-path serving baseline);
    * ``no_grad`` — per-sample ``predict`` (graph-free fast path + arena);
    * ``batched`` — ``predict_batch`` over ``batch_size`` chunks, one
      vectorized pass per chunk reusing the model's arena throughout.

    Returns ``(mode_entries, speedups, seconds)`` — the payload's
    inference entries plus the unrounded per-path best times, so callers
    can derive further ratios without rounding error.
    """
    num_windows = len(stacked)
    model.eval()

    def run_graph() -> None:
        for window in stacked:
            model.forward(window)

    def run_no_grad() -> None:
        for window in stacked:
            model.predict(window)

    def run_batched() -> None:
        for start in range(0, num_windows, batch_size):
            model.predict_batch(stacked[start : start + batch_size])

    entries = []
    seconds: dict[str, float] = {}
    for path, batch, fn in (
        ("graph", 1, run_graph),
        ("no_grad", 1, run_no_grad),
        ("batched", batch_size, run_batched),
    ):
        elapsed = _timed_call(fn, reps)
        seconds[path] = elapsed
        entries.append(
            {
                "path": path,
                "dtype": dtype,
                "batch_size": batch,
                "seconds": round(elapsed, 4),
                "predictions_per_sec": round(num_windows / elapsed, 2),
            }
        )
    speedups = {
        "no_grad_vs_graph": round(seconds["graph"] / seconds["no_grad"], 3),
        "batched_vs_graph": round(seconds["graph"] / seconds["batched"], 3),
        "batched_vs_no_grad": round(seconds["no_grad"] / seconds["batched"], 3),
    }
    return entries, speedups, seconds


def drive_clients(service, windows, clients: int) -> float:
    """Issue each window once through ``service`` from concurrent clients.

    The windows are split round-robin across ``clients`` blocking client
    threads (every thread gets a non-empty share as long as
    ``clients <= len(windows)``), so the service really sees the stated
    concurrency.  Returns elapsed wall-clock seconds; the service's own
    counters (``service.stats()``) accumulate alongside.  Shared by the
    perf harness and the CLI ``serve`` demo.
    """
    chunks = [windows[i::clients] for i in range(clients)]
    threads = [
        threading.Thread(
            target=lambda chunk: [service.predict(w) for w in chunk],
            args=(chunk,),
        )
        for chunk in chunks
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def measure_serving(
    artifact_path: str | Path,
    windows: np.ndarray,
    concurrency: Sequence[int] = (1, 4, 16),
    max_batch: int = 4,
    served_dtype: str | None = "float32",
    reps: int = 3,
    workers: Sequence[int] = (1, 2),
) -> dict:
    """Requests/sec through the serving stack vs sequential baselines.

    ``windows`` is a stacked ``(N, R, W, C)`` array of raw-count request
    windows; every run issues each window once (so all modes do identical
    work).  Three measurements:

    * ``sequential.graph`` — a per-sample loop through the graph-building
      forward: the naive serving baseline (what serving cost before the
      no-grad fast path existed);
    * ``sequential.no_grad`` — a per-sample ``Forecaster.predict`` loop
      on the artifact as a plain client would load it (native dtype);
    * ``service`` — a :class:`~repro.serving.ForecastService` over a
      :class:`~repro.serving.ModelPool` entry (float32 serving mode),
      swept over the ``workers`` worker-pool sizes and, for each, driven
      by ``k`` concurrent clients for each ``k`` in ``concurrency``;
      clients block per request, so the coalesced batch is bounded by
      the concurrency.

    Returns the ``serving`` payload section; headline speedups compare
    the concurrency-4 single-worker service against both baselines (the
    trajectory floor recorded before the workers dimension existed), and
    the multi-worker column against the single-worker one.  Example::

        serving = measure_serving("model.npz", stacked, concurrency=(1, 4))
        print(serving["speedups"]["service_conc4_vs_sequential"])
    """
    from ..api import Forecaster
    from ..serving import ForecastService, ModelPool

    windows = np.asarray(windows, dtype=float)
    num_requests = len(windows)

    # Baseline client: loads the artifact itself, native dtype, and
    # loops predict per sample.
    baseline = Forecaster.load(artifact_path)
    model = baseline.model
    mu, sigma = baseline.mu, baseline.sigma
    model.eval()

    def run_graph() -> None:
        for window in windows:
            out = model.forward((window - mu) / sigma)
            prediction = getattr(out, "prediction", out)  # STHSL returns a bundle
            np.maximum(prediction.data * sigma + mu, 0.0)

    def run_no_grad() -> None:
        for window in windows:
            baseline.predict(window)

    sequential = []
    seconds: dict[str, float] = {}
    for path, fn in (("graph", run_graph), ("no_grad", run_no_grad)):
        elapsed = _timed_call(fn, reps)
        seconds[path] = elapsed
        sequential.append(
            {
                "path": path,
                "dtype": "float64",
                "requests_per_sec": round(num_requests / elapsed, 2),
            }
        )

    pool = ModelPool(capacity=2, served_dtype=served_dtype)
    served = pool.get(artifact_path)
    service_entries = []
    service_rps: dict[tuple[int, int], float] = {}  # (workers, clients) -> req/s
    # The tracked numbers run with the resilience layer *on* (a generous
    # per-request deadline plus a bounded admission queue), so the floors
    # defend the production configuration, not a stripped-down one.
    resilience = {"deadline_s": 30.0, "max_queue": 1024}
    for worker_count in workers:
        with ForecastService(
            served,
            max_batch=max_batch,
            workers=worker_count,
            deadline=resilience["deadline_s"],
            max_queue=resilience["max_queue"],
        ) as service:
            # Warm-up burst sized so *every* worker thread drains at least
            # one batch and builds its per-thread arena before timing —
            # a single request would leave N-1 workers allocating cold
            # inside the timed region, deflating the multi-worker column.
            service.predict_many([windows[0]] * max(worker_count * max_batch, 1))
            for requested in concurrency:
                # Round-robin sharing keeps every client thread non-empty, so
                # the recorded concurrency is the concurrency that actually
                # ran; with fewer requests than clients the entry is labelled
                # with the effective client count.
                clients = min(requested, num_requests)

                def run_clients() -> dict:
                    service.reset_stats()
                    elapsed = drive_clients(service, windows, clients)
                    return {"elapsed": elapsed, "stats": service.stats()}

                best = min((run_clients() for _ in range(reps)), key=lambda r: r["elapsed"])
                stats = best["stats"]
                service_rps[worker_count, clients] = num_requests / best["elapsed"]
                service_entries.append(
                    {
                        "workers": worker_count,
                        "concurrency": clients,
                        "requests_per_sec": round(service_rps[worker_count, clients], 2),
                        "mean_batch": round(stats.mean_batch, 3),
                        "latency_p50_ms": round(stats.latency_p50 * 1e3, 3),
                        "latency_p95_ms": round(stats.latency_p95 * 1e3, 3),
                    }
                )

    # Headline floors are computed against the single-worker column (the
    # lowest workers level measured) so the tracked trajectory stays
    # comparable with the pre-workers-dimension history.  When the sweep
    # excludes workers=1 the keys gain a _workersN suffix — a multi-worker
    # measurement must never masquerade under the historical key names the
    # regression floors are pinned to.
    base_workers = min(w for w, _ in service_rps)
    base_clients = sorted(c for w, c in service_rps if w == base_workers)
    headline = 4 if 4 in base_clients else max(base_clients)
    low, high = base_clients[0], base_clients[-1]
    tag = "" if base_workers == 1 else f"_workers{base_workers}"
    speedups = {
        f"service_conc{headline}{tag}_vs_graph_baseline": round(
            service_rps[base_workers, headline] * seconds["graph"] / num_requests, 3
        ),
        f"service_conc{headline}{tag}_vs_sequential": round(
            service_rps[base_workers, headline] * seconds["no_grad"] / num_requests, 3
        ),
        f"service_conc{high}{tag}_vs_conc{low}": round(
            service_rps[base_workers, high] / service_rps[base_workers, low], 3
        ),
    }
    top_workers = max(w for w, _ in service_rps)
    if top_workers != base_workers and (top_workers, headline) in service_rps:
        speedups[f"service_conc{headline}_workers{top_workers}_vs_workers{base_workers}"] = round(
            service_rps[top_workers, headline] / service_rps[base_workers, headline], 3
        )
    return {
        "num_requests": num_requests,
        "max_batch": max_batch,
        "workers": [int(w) for w in workers],
        "resilience": resilience,
        "artifact": {
            "model": baseline.model_name,
            "served_dtype": served.served_dtype,
        },
        "sequential": sequential,
        "service": service_entries,
        "speedups": speedups,
    }


def measure_kernels(
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    batch_size: int = 4,
    channels: int = 32,
    serving_windows: int = 32,
    reps: int = 5,
) -> dict:
    """Conv-strategy and serving-dtype benchmarks for one grid geometry.

    Returns one geometry block of the ``kernels`` payload section, two
    halves:

    * ``conv`` — each registered convolution strategy timed on the
      batched no-grad inference path (arena active, like ``predict``)
      for conv2d/conv1d x float64/float32, on the model-hot shapes:
      conv2d sees ``N = batch * window`` frames of ``channels`` maps over
      the ``rows x cols`` grid (the spatial hypergraph conv regime),
      conv1d sees ``N = batch * regions`` rows of length ``window`` (the
      temporal conv regime).  ``speedups`` records each alternative
      strategy against im2col plus the ``*_best_vs_im2col`` headline the
      smoke floor tracks; ``auto_strategy`` records what the dispatch
      table actually picks for each (op, dtype) at this geometry.
    * ``serving_dtypes`` — end-to-end ``predict_batch`` throughput of a
      saved-and-reloaded artifact at each serving mode: the pinned
      ``float32_baseline_im2col`` row (the pre-kernel-dispatch serving
      path), float32 under auto kernel dispatch, ``served_dtype=
      "float16"`` (f16-rounded weights, f32 compute), and the
      experimental ``int8_weights`` row.  Every row carries its MAE
      delta against the native-float64 forecaster, absolute and relative
      to the mean |f64 prediction|, judged against
      :data:`KERNEL_MAE_GATES`.

    Timings are best-of-``reps`` over a calibrated number of calls per
    rep (small geometries loop more so every measurement spans a few
    tens of milliseconds).
    """
    from .. import nn
    from ..api import Forecaster
    from ..api.registry import ModelGeometry

    rows, cols = dataset.grid.rows, dataset.grid.cols
    num_regions = rows * cols
    window = budget.window
    rng = np.random.default_rng(0)

    # ----- conv-strategy half -----
    n2 = batch_size * window
    x2_base = rng.standard_normal((n2, channels, rows, cols))
    w2_base = rng.standard_normal((channels, channels, 3, 3))
    n1 = batch_size * num_regions
    x1_base = rng.standard_normal((n1, channels, window))
    w1_base = rng.standard_normal((channels, channels, 3))

    arena = nn.BufferArena()
    conv_entries: list[dict] = []
    auto_strategy: dict[str, str] = {}
    speedups: dict[str, float] = {}
    strategies = nn.CONV_STRATEGIES

    for op, x_base, w_base, conv_fn in (
        ("conv2d", x2_base, w2_base, nn.conv2d),
        ("conv1d", x1_base, w1_base, nn.conv1d),
    ):
        # Loop count sized so one timed rep covers ~3M input elements —
        # keeps small-geometry measurements out of timer-resolution noise.
        calls = max(1, int(3_000_000 // max(1, x_base.size)))
        for dtype_name in ("float64", "float32"):
            x = nn.Tensor(x_base.astype(dtype_name))
            w = nn.Tensor(w_base.astype(dtype_name))
            out_spatial = n2 * num_regions if op == "conv2d" else n1 * window
            auto_strategy[f"{op}_{dtype_name}"] = nn.resolve_conv_strategy(
                op, dtype_name, out_spatial
            )
            per_strategy: dict[str, float] = {}
            for strategy in strategies:

                def run() -> None:
                    with nn.no_grad(), nn.use_arena(arena), nn.conv_strategy(strategy):
                        for _ in range(calls):
                            conv_fn(x, w, padding=1)

                elapsed = _timed_call(run, reps)
                per_strategy[strategy] = elapsed
                conv_entries.append(
                    {
                        "op": op,
                        "dtype": dtype_name,
                        "strategy": strategy,
                        "input_shape": list(x_base.shape),
                        "calls": calls,
                        "seconds": round(elapsed, 5),
                        "per_call_ms": round(elapsed / calls * 1e3, 4),
                    }
                )
            baseline = per_strategy["im2col"]
            best_strategy = min(per_strategy, key=per_strategy.get)
            for strategy in strategies:
                if strategy != "im2col":
                    speedups[f"{op}_{dtype_name}_{strategy}_vs_im2col"] = round(
                        baseline / per_strategy[strategy], 3
                    )
            speedups[f"{op}_{dtype_name}_best_vs_im2col"] = round(
                baseline / per_strategy[best_strategy], 3
            )
            auto_strategy[f"{op}_{dtype_name}_best"] = best_strategy

    # ----- serving-dtype half -----
    serving_fc = Forecaster("ST-HSL", budget=budget, hidden=8)
    serving_fc.geometry = ModelGeometry.of(dataset)
    serving_fc.model = make_sthsl(dataset, budget)
    serving_fc.mu = float(dataset.mu)
    serving_fc.sigma = float(dataset.sigma)
    serving_fc.categories = dataset.categories
    windows = WindowDataset(dataset, window=window)
    samples = list(windows.samples("train"))[: max(1, serving_windows)]
    raw = np.stack(
        [dataset.tensor[:, sample.day - window : sample.day, :] for sample in samples]
    )

    serving_entries: list[dict] = []
    serving_rates: dict[str, float] = {}
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = Path(tmp) / "kernel_bench.npz"
        serving_fc.save(artifact_path)
        reference = serving_fc.predict_batch(raw)  # native float64
        ref_scale = float(np.abs(reference).mean()) + 1e-12
        rounds = (
            ("float32_baseline_im2col", {"served_dtype": "float32"}, "im2col"),
            ("float32", {"served_dtype": "float32"}, "auto"),
            ("float16", {"served_dtype": "float16"}, "auto"),
            ("int8", {"served_dtype": "float32", "int8_weights": True}, "auto"),
        )
        for mode, load_kwargs, strategy in rounds:
            loaded = Forecaster.load(artifact_path, **load_kwargs)
            with nn.conv_strategy(strategy):
                elapsed = _timed_call(lambda: loaded.predict_batch(raw), reps)
                predictions = loaded.predict_batch(raw)
            mae_delta = float(np.abs(predictions - reference).mean())
            rate = len(raw) / elapsed
            serving_rates[mode] = rate
            gate = KERNEL_MAE_GATES.get(mode)
            entry = {
                "mode": mode,
                "served_dtype": loaded.served_dtype,
                "conv_strategy": strategy,
                "predictions_per_sec": round(rate, 2),
                "mae_delta": round(mae_delta, 8),
                "mae_delta_rel": round(mae_delta / ref_scale, 8),
            }
            if gate is not None:
                entry["mae_gate_rel"] = gate
                entry["within_gate"] = bool(mae_delta / ref_scale <= gate)
            if mode == "int8":
                entry["experimental"] = True
            serving_entries.append(entry)

    baseline_rate = serving_rates["float32_baseline_im2col"]
    serving_speedups = {
        f"{mode}_vs_float32_baseline": round(serving_rates[mode] / baseline_rate, 3)
        for mode in ("float32", "float16", "int8")
    }

    return {
        "rows": rows,
        "cols": cols,
        "window": window,
        "batch_size": batch_size,
        "channels": channels,
        "conv": conv_entries,
        "auto_strategy": auto_strategy,
        "speedups": speedups,
        "serving_dtypes": {
            "num_windows": len(raw),
            "entries": serving_entries,
            "speedups": serving_speedups,
        },
    }


def measure_network(
    artifact_path: str | Path,
    windows: np.ndarray,
    concurrency: int = 4,
    max_batch: int = 4,
    served_dtype: str | None = "float32",
    reps: int = 3,
    process_workers: int = 2,
) -> dict:
    """Requests/sec for one artifact behind three deployment shapes.

    Every mode serves the same ``(N, R, W, C)`` request windows to the
    same ``concurrency`` blocking clients (via :func:`drive_clients`),
    so the columns isolate deployment cost, not workload:

    * ``local`` — the in-process :class:`~repro.serving.ForecastService`
      (the reference the wire tax is measured against);
    * ``remote`` — the same service behind a live
      :class:`~repro.serving.NetworkServer` on an ephemeral loopback
      port, driven through the :class:`~repro.serving.RemoteForecastService`
      client SDK: each request pays HTTP parsing plus JSON
      encode/decode both ways;
    * ``process_workers`` — the service backed by a
      :class:`~repro.serving.WorkerPool` of ``process_workers`` forked
      worker processes: each job pays a pickle + pipe round trip but
      computes outside the client GIL.

    Returns the ``network`` payload section; ``speedups`` records
    ``remote_vs_local`` (the wire tax, expected < 1 on one core) and
    ``process_workers_vs_local``.  Example::

        network = measure_network("model.npz", stacked, concurrency=4)
        print(network["speedups"]["remote_vs_local"])
    """
    from ..serving import (
        ForecastService,
        ModelPool,
        NetworkServer,
        RemoteForecastService,
        WorkerPool,
    )

    windows = np.asarray(windows, dtype=float)
    num_requests = len(windows)
    clients = min(concurrency, num_requests)
    pool = ModelPool(capacity=2, served_dtype=served_dtype)
    served = pool.get(artifact_path)

    def best_rate(backend) -> float:
        elapsed = min(drive_clients(backend, windows, clients) for _ in range(reps))
        return num_requests / elapsed

    entries: list[dict] = []
    rates: dict[str, float] = {}

    with ForecastService(served, max_batch=max_batch, workers=1) as service:
        service.predict_many([windows[0]] * max_batch)
        rates["local"] = best_rate(service)
        entries.append(
            {
                "mode": "local",
                "transport": "in_process",
                "workers": 1,
                "concurrency": clients,
                "requests_per_sec": round(rates["local"], 2),
            }
        )

    with ForecastService(served, max_batch=max_batch, workers=1) as service:
        with NetworkServer(service, port=0, model="perf") as server:
            client = RemoteForecastService(server.url, max_connections=clients)
            try:
                client.predict(windows[0])  # connection + edge warm-up
                rates["remote"] = best_rate(client)
            finally:
                client.stop()
        entries.append(
            {
                "mode": "remote",
                "transport": "http_loopback",
                "workers": 1,
                "concurrency": clients,
                "requests_per_sec": round(rates["remote"], 2),
            }
        )

    with WorkerPool(artifact_path, workers=process_workers, job_timeout=120.0) as wpool:
        with ForecastService(
            wpool, max_batch=max_batch, workers=process_workers
        ) as service:
            service.predict_many([windows[0]] * max(process_workers * max_batch, 1))
            rates["process_workers"] = best_rate(service)
            entries.append(
                {
                    "mode": "process_workers",
                    "transport": "pipe_fork",
                    "workers": process_workers,
                    "concurrency": clients,
                    "requests_per_sec": round(rates["process_workers"], 2),
                }
            )

    return {
        "num_requests": num_requests,
        "concurrency": clients,
        "max_batch": max_batch,
        "rpc_schema": "repro.rpc/v1",
        "modes": entries,
        "speedups": {
            "remote_vs_local": round(rates["remote"] / rates["local"], 3),
            "process_workers_vs_local": round(
                rates["process_workers"] / rates["local"], 3
            ),
        },
    }


def measure_perf(
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    batch_sizes: Sequence[int] = (1, 4, 16),
    reps: int = 3,
    include_float32: bool = True,
    seed_reference: dict | None = None,
    fast_alloc: bool = True,
    inference_windows: int = 64,
    inference_batch: int | None = None,
    serving_concurrency: Sequence[int] = (1, 4, 16),
    serving_max_batch: int = 4,
    serving_workers: Sequence[int] = (1, 2),
    kernel_datasets: Sequence[CrimeDataset] | None = None,
    kernel_channels: int = 32,
    network_concurrency: int = 4,
    network_process_workers: int = 2,
) -> dict:
    """Measure training and inference throughput across execution modes.

    Training modes: the per-sample fallback path (``sequential``, at the
    largest batch size so the accumulation schedule matches), the batched
    path at each requested batch size, and optionally the float32 compute
    mode at the largest batch size.  Inference paths: see
    :func:`measure_inference`, plus — when ``include_float32`` — the
    batched fast path in the float32 compute mode (the serving analogue
    of the training float32 column).  ``seed_reference`` (a recorded
    pre-batching measurement, see ``benchmarks/perf/run_all.py``) is
    embedded verbatim and used for the headline speedup when provided.

    ``fast_alloc`` applies :func:`enable_fast_alloc`, which retunes the
    process-wide glibc allocator for the rest of the process — pass
    ``False`` when measuring inside a host process (test runner,
    notebook) whose allocator behaviour should be left alone.

    The serving section (see :func:`measure_serving`) reuses the
    inference request windows: a temporary artifact is saved from the
    bench model and served through the pool + service stack at each
    ``serving_concurrency`` level for each ``serving_workers`` pool
    size.

    The kernels section (see :func:`measure_kernels`) runs once per
    dataset in ``kernel_datasets`` — pass the bench dataset plus a
    paper-scale 16x16 one to record both geometries, as
    ``benchmarks/perf/run_all.py`` does; defaults to just ``dataset``.

    The network section (see :func:`measure_network`) serves the same
    artifact behind the in-process service, a live loopback
    :class:`~repro.serving.NetworkServer`, and a
    :class:`~repro.serving.WorkerPool` of ``network_process_workers``
    forked processes, all at ``network_concurrency`` clients.
    """
    if fast_alloc:
        enable_fast_alloc()
    windows = WindowDataset(dataset, window=budget.window)
    # Windows actually visited per epoch: the limit cannot exceed the split.
    available = windows.num_samples("train")
    num_windows = min(budget.train_limit, available) if budget.train_limit else available
    top_batch = max(batch_sizes)
    modes: list[dict] = []

    def record(mode: str, dtype: str, batch_size: int, seconds: float) -> dict:
        entry = {
            "mode": mode,
            "dtype": dtype,
            "batch_size": batch_size,
            "epoch_seconds": round(seconds, 4),
            "windows_per_sec": round(num_windows / seconds, 2),
        }
        modes.append(entry)
        return entry

    sequential = _timed_epoch(
        make_sthsl(dataset, budget), windows, budget, top_batch, use_batched=False, reps=reps
    )
    record("sequential", "float64", top_batch, sequential)

    batched: dict[int, float] = {}
    for batch_size in batch_sizes:
        batched[batch_size] = _timed_epoch(
            make_sthsl(dataset, budget), windows, budget, batch_size, use_batched=True, reps=reps
        )
        record("batched", "float64", batch_size, batched[batch_size])

    if include_float32:
        base = make_sthsl(dataset, budget)
        model32 = STHSL(base.config.with_overrides(compute_dtype="float32"), seed=budget.seed)
        seconds32 = _timed_epoch(model32, windows, budget, top_batch, use_batched=True, reps=reps)
        record("batched", "float32", top_batch, seconds32)

    training_speedups = {
        "batched_top_vs_sequential": round(sequential / batched[top_batch], 3),
    }

    # ----- Inference section -----
    samples = list(windows.samples("train"))[: max(1, inference_windows)]
    stacked = np.stack([sample.window for sample in samples])
    # Forward-only passes are memory-locality-bound at the bench geometry,
    # same as training: small batches win on a single core.
    infer_batch = inference_batch if inference_batch is not None else min(4, top_batch)
    infer_model = make_sthsl(dataset, budget)
    inference_modes, inference_speedups, inference_seconds = measure_inference(
        infer_model, stacked, batch_size=infer_batch, reps=reps
    )
    if include_float32:
        # The serving-mode counterpart of the training section's float32
        # column: the batched fast path in the float32 compute mode,
        # against the same float64 graph-building baseline.
        graph_seconds = inference_seconds["graph"]
        infer32 = STHSL(
            infer_model.config.with_overrides(compute_dtype="float32"), seed=budget.seed
        )

        def run_batched32() -> None:
            for start in range(0, len(stacked), infer_batch):
                infer32.predict_batch(stacked[start : start + infer_batch])

        infer32.eval()
        elapsed32 = _timed_call(run_batched32, reps)
        inference_modes.append(
            {
                "path": "batched",
                "dtype": "float32",
                "batch_size": infer_batch,
                "seconds": round(elapsed32, 4),
                "predictions_per_sec": round(len(stacked) / elapsed32, 2),
            }
        )
        inference_speedups["batched_float32_vs_graph"] = round(graph_seconds / elapsed32, 3)

    # ----- Serving section -----
    # A self-describing artifact of the bench model, served through the
    # pool + service stack against the same request windows (raw counts).
    from ..api import Forecaster
    from ..api.registry import ModelGeometry

    serving_fc = Forecaster("ST-HSL", budget=budget, hidden=8)
    serving_fc.geometry = ModelGeometry.of(dataset)
    serving_fc.model = make_sthsl(dataset, budget)
    serving_fc.mu = float(dataset.mu)
    serving_fc.sigma = float(dataset.sigma)
    serving_fc.categories = dataset.categories
    raw_windows = np.stack(
        [dataset.tensor[:, sample.day - budget.window : sample.day, :] for sample in samples]
    )
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = Path(tmp) / "bench_model.npz"
        serving_fc.save(artifact_path)
        serving = measure_serving(
            artifact_path,
            raw_windows,
            concurrency=tuple(serving_concurrency),
            max_batch=serving_max_batch,
            reps=reps,
            workers=tuple(serving_workers),
        )
        network = measure_network(
            artifact_path,
            raw_windows,
            concurrency=network_concurrency,
            max_batch=serving_max_batch,
            reps=reps,
            process_workers=network_process_workers,
        )

    # ----- Kernels section -----
    kernel_blocks = [
        measure_kernels(
            kernel_dataset,
            budget,
            batch_size=infer_batch,
            channels=kernel_channels,
            reps=reps,
        )
        for kernel_dataset in (kernel_datasets if kernel_datasets is not None else [dataset])
    ]

    payload = {
        "schema": PERF_SCHEMA,
        "geometry": {
            "rows": dataset.grid.rows,
            "cols": dataset.grid.cols,
            "num_days": dataset.num_days,
            "num_categories": dataset.num_categories,
            "window": budget.window,
            "train_limit": budget.train_limit,
        },
        "training": {"modes": modes, "speedups": training_speedups},
        "inference": {
            "num_windows": len(stacked),
            "modes": inference_modes,
            "speedups": inference_speedups,
        },
        "serving": serving,
        "kernels": {"geometries": kernel_blocks},
        "network": network,
    }
    if seed_reference is not None:
        payload["seed_reference"] = dict(seed_reference)
        seed_seconds = float(seed_reference["epoch_seconds"])
        training_speedups["batched_top_vs_seed"] = round(seed_seconds / batched[top_batch], 3)
        if include_float32:
            training_speedups["batched_top_float32_vs_seed"] = round(seed_seconds / seconds32, 3)
    return payload


def _validate_section(section, name: str, required_keys: set, time_key: str, rate_key: str) -> None:
    if not isinstance(section, dict):
        raise ValueError(f"{name} must be a mapping")
    for key in ("modes", "speedups"):
        if key not in section:
            raise ValueError(f"{name} missing key {key!r}")
    if not isinstance(section["modes"], list) or not section["modes"]:
        raise ValueError(f"{name}.modes must be a non-empty list")
    for entry in section["modes"]:
        missing = required_keys - set(entry)
        if missing:
            raise ValueError(f"{name} mode entry missing keys {sorted(missing)}")
        if entry["dtype"] not in ("float32", "float64"):
            raise ValueError(f"unknown dtype {entry['dtype']!r}")
        if not entry[time_key] > 0 or not entry[rate_key] > 0:
            raise ValueError(f"{name} timings must be positive")
    if not all(isinstance(v, (int, float)) and v > 0 for v in section["speedups"].values()):
        raise ValueError(f"{name}.speedups must be positive numbers")


def _validate_serving(section) -> None:
    if not isinstance(section, dict):
        raise ValueError("serving must be a mapping")
    for key in ("num_requests", "max_batch", "workers", "artifact", "sequential", "service", "speedups"):
        if key not in section:
            raise ValueError(f"serving missing key {key!r}")
    if not isinstance(section["workers"], list) or not all(
        isinstance(w, int) and w >= 1 for w in section["workers"]
    ):
        raise ValueError("serving.workers must be a list of positive ints")
    if not isinstance(section["sequential"], list) or not section["sequential"]:
        raise ValueError("serving.sequential must be a non-empty list")
    for entry in section["sequential"]:
        missing = _REQUIRED_SEQUENTIAL_KEYS - set(entry)
        if missing:
            raise ValueError(f"serving sequential entry missing keys {sorted(missing)}")
        if entry["path"] not in _SEQUENTIAL_PATHS:
            raise ValueError(f"unknown serving baseline path {entry['path']!r}")
        if not entry["requests_per_sec"] > 0:
            raise ValueError("serving baseline rates must be positive")
    if not isinstance(section["service"], list) or not section["service"]:
        raise ValueError("serving.service must be a non-empty list")
    for entry in section["service"]:
        missing = _REQUIRED_SERVICE_KEYS - set(entry)
        if missing:
            raise ValueError(f"serving service entry missing keys {sorted(missing)}")
        if not entry["requests_per_sec"] > 0 or not entry["concurrency"] >= 1:
            raise ValueError("serving service entries must have positive rates")
        if not entry["workers"] >= 1:
            raise ValueError("serving service entries must record workers >= 1")
    if not all(isinstance(v, (int, float)) and v > 0 for v in section["speedups"].values()):
        raise ValueError("serving.speedups must be positive numbers")


def _validate_kernels(section) -> None:
    from ..nn.kernels import CONV_STRATEGIES

    if not isinstance(section, dict):
        raise ValueError("kernels must be a mapping")
    if "geometries" not in section:
        raise ValueError("kernels missing key 'geometries'")
    blocks = section["geometries"]
    if not isinstance(blocks, list) or not blocks:
        raise ValueError("kernels.geometries must be a non-empty list")
    for block in blocks:
        for key in ("rows", "cols", "conv", "auto_strategy", "speedups", "serving_dtypes"):
            if key not in block:
                raise ValueError(f"kernels geometry block missing key {key!r}")
        if not isinstance(block["conv"], list) or not block["conv"]:
            raise ValueError("kernels conv timings must be a non-empty list")
        for entry in block["conv"]:
            missing = _REQUIRED_KERNEL_CONV_KEYS - set(entry)
            if missing:
                raise ValueError(f"kernels conv entry missing keys {sorted(missing)}")
            if entry["op"] not in ("conv2d", "conv1d"):
                raise ValueError(f"unknown kernels conv op {entry['op']!r}")
            if entry["dtype"] not in ("float32", "float64"):
                raise ValueError(f"unknown dtype {entry['dtype']!r}")
            if entry["strategy"] not in CONV_STRATEGIES:
                raise ValueError(f"unknown conv strategy {entry['strategy']!r}")
            if not entry["seconds"] > 0 or not entry["per_call_ms"] > 0:
                raise ValueError("kernels conv timings must be positive")
        if not all(
            isinstance(v, (int, float)) and v > 0 for v in block["speedups"].values()
        ):
            raise ValueError("kernels.speedups must be positive numbers")
        serving = block["serving_dtypes"]
        if not isinstance(serving, dict) or not serving.get("entries"):
            raise ValueError("kernels.serving_dtypes.entries must be non-empty")
        for entry in serving["entries"]:
            missing = _REQUIRED_KERNEL_SERVING_KEYS - set(entry)
            if missing:
                raise ValueError(f"kernels serving entry missing keys {sorted(missing)}")
            if entry["mode"] not in _KERNEL_SERVING_MODES:
                raise ValueError(f"unknown kernels serving mode {entry['mode']!r}")
            if not entry["predictions_per_sec"] > 0:
                raise ValueError("kernels serving rates must be positive")
            if entry["mae_delta"] < 0 or entry["mae_delta_rel"] < 0:
                raise ValueError("kernels serving MAE deltas must be non-negative")
            if "within_gate" in entry and not entry["within_gate"]:
                raise ValueError(
                    f"kernels serving mode {entry['mode']!r} exceeds its MAE gate: "
                    f"{entry['mae_delta_rel']} > {entry.get('mae_gate_rel')}"
                )


def _validate_network(section) -> None:
    if not isinstance(section, dict):
        raise ValueError("network must be a mapping")
    for key in ("num_requests", "concurrency", "modes", "speedups"):
        if key not in section:
            raise ValueError(f"network missing key {key!r}")
    if not isinstance(section["modes"], list) or not section["modes"]:
        raise ValueError("network.modes must be a non-empty list")
    recorded = set()
    for entry in section["modes"]:
        missing = _REQUIRED_NETWORK_KEYS - set(entry)
        if missing:
            raise ValueError(f"network mode entry missing keys {sorted(missing)}")
        if entry["mode"] not in _NETWORK_MODES:
            raise ValueError(f"unknown network mode {entry['mode']!r}")
        if not entry["requests_per_sec"] > 0 or not entry["concurrency"] >= 1:
            raise ValueError("network mode entries must have positive rates")
        recorded.add(entry["mode"])
    missing_modes = set(_NETWORK_MODES) - recorded
    if missing_modes:
        raise ValueError(f"network section missing modes {sorted(missing_modes)}")
    if not all(isinstance(v, (int, float)) and v > 0 for v in section["speedups"].values()):
        raise ValueError("network.speedups must be positive numbers")


def validate_perf_payload(payload: dict) -> None:
    """Raise ``ValueError`` if ``payload`` does not match the v6 perf schema.

    The kernels section's accuracy gates are enforced here too: a payload
    recording a float16/int8 serving row outside its MAE gate is invalid,
    not merely slow — and the network section must record all three
    deployment shapes (local, remote, process_workers).
    """
    if payload.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"unexpected schema tag: {payload.get('schema')!r} (expected {PERF_SCHEMA}; "
            "re-run benchmarks/perf/run_all.py to regenerate pre-v6 payloads)"
        )
    for key in ("geometry", "training", "inference", "serving", "kernels", "network"):
        if key not in payload:
            raise ValueError(f"missing top-level key {key!r}")
    _validate_section(
        payload["training"], "training", _REQUIRED_TRAINING_KEYS, "epoch_seconds", "windows_per_sec"
    )
    for entry in payload["training"]["modes"]:
        if entry["mode"] not in ("sequential", "batched"):
            raise ValueError(f"unknown training mode {entry['mode']!r}")
    _validate_section(
        payload["inference"], "inference", _REQUIRED_INFERENCE_KEYS, "seconds", "predictions_per_sec"
    )
    for entry in payload["inference"]["modes"]:
        if entry["path"] not in _INFERENCE_PATHS:
            raise ValueError(f"unknown inference path {entry['path']!r}")
    _validate_serving(payload["serving"])
    _validate_kernels(payload["kernels"])
    _validate_network(payload["network"])


def write_perf_json(payload: dict, path) -> None:
    """Validate and pretty-write a perf payload."""
    validate_perf_payload(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
