"""Training/inference throughput measurement (the tracked perf suite).

ST-HSL's efficiency study (paper Table V) compares architectures; this
module instead tracks *our implementation's* throughput over time so
every PR can defend a perf trajectory.  It measures windows/sec and
epoch wall-clock for the batched execution path at several batch sizes,
the per-sample fallback path, and the float32 compute mode, and writes a
schema-versioned ``BENCH_perf.json`` for regression tracking.

Entry point: ``benchmarks/perf/run_all.py``; a tier-1 smoke test
(``pytest -m perf_smoke``) validates the schema on a tiny geometry.
"""

from __future__ import annotations

import ctypes
import json
import time
from typing import Sequence

from ..core import STHSL
from ..data.datasets import CrimeDataset
from ..training import Trainer, WindowDataset
from .experiment import ExperimentBudget, make_sthsl

__all__ = [
    "PERF_SCHEMA",
    "enable_fast_alloc",
    "measure_perf",
    "validate_perf_payload",
    "write_perf_json",
]

PERF_SCHEMA = "repro.perf/v1"

_REQUIRED_MODE_KEYS = {"mode", "dtype", "batch_size", "epoch_seconds", "windows_per_sec"}


def enable_fast_alloc() -> bool:
    """Raise glibc's mmap/trim thresholds so large numpy temporaries are reused.

    The autograd hot path allocates and frees multi-megabyte arrays every
    op; with default thresholds glibc returns them to the kernel each time
    and every reuse pays page faults (~10-15% of epoch time on the bench
    geometry).  Safe no-op on non-glibc platforms.  Returns whether the
    tuning was applied.
    """
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        m_mmap_threshold, m_trim_threshold = -3, -1
        threshold = 128 * 1024 * 1024
        ok = libc.mallopt(m_mmap_threshold, threshold)
        ok &= libc.mallopt(m_trim_threshold, threshold)
        return bool(ok)
    except OSError:  # pragma: no cover - non-glibc platform
        return False


def _timed_epoch(model, windows: WindowDataset, budget: ExperimentBudget,
                 batch_size: int, use_batched: bool, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for one training epoch."""
    trainer = Trainer(
        model,
        lr=budget.lr,
        weight_decay=budget.weight_decay,
        batch_size=batch_size,
        seed=budget.seed,
        use_batched=use_batched,
    )
    best = float("inf")
    trainer._train_epoch(windows, budget.train_limit)  # warm caches / BLAS
    for _ in range(reps):
        start = time.perf_counter()
        trainer._train_epoch(windows, budget.train_limit)
        best = min(best, time.perf_counter() - start)
    return best


def measure_perf(
    dataset: CrimeDataset,
    budget: ExperimentBudget,
    batch_sizes: Sequence[int] = (1, 4, 16),
    reps: int = 3,
    include_float32: bool = True,
    seed_reference: dict | None = None,
    fast_alloc: bool = True,
) -> dict:
    """Measure epoch wall-clock and windows/sec across execution modes.

    Modes: the per-sample fallback path (``sequential``, at the largest
    batch size so the accumulation schedule matches), the batched path at
    each requested batch size, and optionally the float32 compute mode at
    the largest batch size.  ``seed_reference`` (a recorded pre-batching
    measurement, see ``benchmarks/perf/run_all.py``) is embedded verbatim
    and used for the headline speedup when provided.

    ``fast_alloc`` applies :func:`enable_fast_alloc`, which retunes the
    process-wide glibc allocator for the rest of the process — pass
    ``False`` when measuring inside a host process (test runner,
    notebook) whose allocator behaviour should be left alone.
    """
    if fast_alloc:
        enable_fast_alloc()
    windows = WindowDataset(dataset, window=budget.window)
    # Windows actually visited per epoch: the limit cannot exceed the split.
    available = windows.num_samples("train")
    num_windows = min(budget.train_limit, available) if budget.train_limit else available
    top_batch = max(batch_sizes)
    modes: list[dict] = []

    def record(mode: str, dtype: str, batch_size: int, seconds: float) -> dict:
        entry = {
            "mode": mode,
            "dtype": dtype,
            "batch_size": batch_size,
            "epoch_seconds": round(seconds, 4),
            "windows_per_sec": round(num_windows / seconds, 2),
        }
        modes.append(entry)
        return entry

    sequential = _timed_epoch(
        make_sthsl(dataset, budget), windows, budget, top_batch, use_batched=False, reps=reps
    )
    record("sequential", "float64", top_batch, sequential)

    batched: dict[int, float] = {}
    for batch_size in batch_sizes:
        batched[batch_size] = _timed_epoch(
            make_sthsl(dataset, budget), windows, budget, batch_size, use_batched=True, reps=reps
        )
        record("batched", "float64", batch_size, batched[batch_size])

    if include_float32:
        base = make_sthsl(dataset, budget)
        model32 = STHSL(base.config.with_overrides(compute_dtype="float32"), seed=budget.seed)
        seconds32 = _timed_epoch(model32, windows, budget, top_batch, use_batched=True, reps=reps)
        record("batched", "float32", top_batch, seconds32)

    payload = {
        "schema": PERF_SCHEMA,
        "geometry": {
            "rows": dataset.grid.rows,
            "cols": dataset.grid.cols,
            "num_days": dataset.num_days,
            "num_categories": dataset.num_categories,
            "window": budget.window,
            "train_limit": budget.train_limit,
        },
        "modes": modes,
        "speedups": {
            "batched_top_vs_sequential": round(sequential / batched[top_batch], 3),
        },
    }
    if seed_reference is not None:
        payload["seed_reference"] = dict(seed_reference)
        seed_seconds = float(seed_reference["epoch_seconds"])
        payload["speedups"]["batched_top_vs_seed"] = round(seed_seconds / batched[top_batch], 3)
        if include_float32:
            payload["speedups"]["batched_top_float32_vs_seed"] = round(seed_seconds / seconds32, 3)
    return payload


def validate_perf_payload(payload: dict) -> None:
    """Raise ``ValueError`` if ``payload`` does not match the perf schema."""
    if payload.get("schema") != PERF_SCHEMA:
        raise ValueError(f"unexpected schema tag: {payload.get('schema')!r}")
    for key in ("geometry", "modes", "speedups"):
        if key not in payload:
            raise ValueError(f"missing top-level key {key!r}")
    if not isinstance(payload["modes"], list) or not payload["modes"]:
        raise ValueError("modes must be a non-empty list")
    for entry in payload["modes"]:
        missing = _REQUIRED_MODE_KEYS - set(entry)
        if missing:
            raise ValueError(f"mode entry missing keys {sorted(missing)}")
        if entry["mode"] not in ("sequential", "batched"):
            raise ValueError(f"unknown mode {entry['mode']!r}")
        if entry["dtype"] not in ("float32", "float64"):
            raise ValueError(f"unknown dtype {entry['dtype']!r}")
        if not entry["epoch_seconds"] > 0 or not entry["windows_per_sec"] > 0:
            raise ValueError("timings must be positive")
    if not all(isinstance(v, (int, float)) and v > 0 for v in payload["speedups"].values()):
        raise ValueError("speedups must be positive numbers")


def write_perf_json(payload: dict, path) -> None:
    """Validate and pretty-write a perf payload."""
    validate_perf_payload(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
